"""Unit tests for repro.timeseries.sequences (DSEQ data model)."""

from __future__ import annotations

import pytest

from repro import DataError, EventInstance, SequenceDatabase, TemporalSequence


def inst(series, symbol, start, end):
    return EventInstance(start=start, end=end, series=series, symbol=symbol)


class TestEventInstance:
    def test_ordering_is_chronological(self):
        a = inst("x", "On", 0, 5)
        b = inst("x", "On", 1, 2)
        c = inst("a", "On", 1, 2)
        assert sorted([b, a, c]) == [a, c, b]  # ties broken by end then series

    def test_rejects_negative_duration(self):
        with pytest.raises(DataError):
            inst("x", "On", 5, 4)

    def test_event_key_and_duration(self):
        instance = inst("Kitchen", "On", 10, 25)
        assert instance.event_key == ("Kitchen", "On")
        assert instance.duration == 15

    def test_shift(self):
        moved = inst("x", "On", 1, 2).shift(10)
        assert (moved.start, moved.end) == (11, 12)
        assert moved.event_key == ("x", "On")


class TestTemporalSequence:
    def test_instances_sorted_on_construction(self):
        sequence = TemporalSequence(0, [inst("b", "On", 5, 6), inst("a", "On", 0, 1)])
        assert [i.series for i in sequence] == ["a", "b"]

    def test_span_and_len(self):
        sequence = TemporalSequence(0, [inst("a", "On", 0, 10), inst("b", "On", 3, 20)])
        assert sequence.span == (0, 20)
        assert len(sequence) == 2

    def test_span_empty_raises(self):
        with pytest.raises(DataError):
            TemporalSequence(0, []).span

    def test_event_queries(self):
        sequence = TemporalSequence(
            0, [inst("a", "On", 0, 1), inst("a", "On", 5, 6), inst("b", "Off", 2, 3)]
        )
        assert sequence.event_keys() == {("a", "On"), ("b", "Off")}
        assert len(sequence.instances_of(("a", "On"))) == 2
        assert sequence.contains_event(("b", "Off"))
        assert not sequence.contains_event(("b", "On"))

    def test_add_keeps_order(self):
        sequence = TemporalSequence(0, [inst("a", "On", 5, 6)])
        sequence.add(inst("b", "On", 0, 1))
        assert sequence[0].series == "b"

    def test_exact_duplicate_instances_collapse(self):
        duplicate = inst("a", "On", 0, 5)
        sequence = TemporalSequence(0, [duplicate, inst("a", "On", 0, 5)])
        assert len(sequence) == 1
        sequence.add(duplicate)
        assert len(sequence) == 1


class TestSequenceDatabase:
    def _db(self) -> SequenceDatabase:
        return SequenceDatabase(
            [
                TemporalSequence(0, [inst("a", "On", 0, 1), inst("b", "On", 2, 3)]),
                TemporalSequence(1, [inst("a", "On", 0, 1)]),
                TemporalSequence(2, [inst("b", "On", 0, 1), inst("b", "On", 4, 5)]),
            ]
        )

    def test_duplicate_sequence_ids_rejected(self):
        with pytest.raises(DataError):
            SequenceDatabase([TemporalSequence(0, []), TemporalSequence(0, [])])

    def test_event_keys_first_appearance_order(self):
        assert self._db().event_keys() == [("a", "On"), ("b", "On")]

    def test_event_support_counts(self):
        counts = self._db().event_support_counts()
        assert counts[("a", "On")] == 2
        assert counts[("b", "On")] == 2

    def test_series_names(self):
        assert self._db().series_names() == ["a", "b"]

    def test_average_instances_per_sequence(self):
        assert self._db().average_instances_per_sequence() == pytest.approx(5 / 3)
        assert SequenceDatabase([]).average_instances_per_sequence() == 0.0

    def test_restrict_to_series_keeps_sequence_count(self):
        restricted = self._db().restrict_to_series(["a"])
        assert len(restricted) == 3  # |DSEQ| unchanged -> relative supports unchanged
        assert restricted.event_keys() == [("a", "On")]

    def test_subset_fraction(self):
        db = self._db()
        assert len(db.subset(0.34)) == 1
        assert len(db.subset(1.0)) == 3
        with pytest.raises(DataError):
            db.subset(0.0)
        with pytest.raises(DataError):
            db.subset(1.5)
