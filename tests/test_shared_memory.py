"""The zero-copy shared-memory transport (:mod:`repro.core.shm`).

Three concerns, layered:

* :class:`SharedArrayStore` and the shared pickler — arrays pack into one
  block at aligned offsets, descriptors resolve to read-only views, nodes
  ship their columnar caches instead of dropping them.
* Block lifecycle — every name the coordinator generates is unlinked on
  every exit path (happy, worker exception, worker *crash*, double close),
  so ``/dev/shm`` never accumulates ``repro-*`` entries.  The autouse
  fixture in ``conftest.py`` backstops every other test in the suite.
* Spawn-platform hardening — the coordinator pins its calibrated kernel
  crossover into the shipped config so spawn workers (which would re-run
  the timed microprobe and may calibrate differently) cannot change kernel
  routing mid-run.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro import (
    MiningConfig,
    MiningSession,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
)
from repro.core import shm
from repro.core.bitmap import Bitmap
from repro.core.engine import (
    backend_from_config,
    effective_kernel_min_pairs,
)
from repro.core.hpg import EventNode, PatternEntry
from repro.timeseries import EventInstance

from test_engine_parity import mined_tuples, random_database, store_snapshot

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

CONFIG = MiningConfig(min_support=0.3, min_confidence=0.3, min_overlap=1.0)


def _shm_entries() -> set[str]:
    """Names of live repro blocks (empty off-Linux: lifecycle asserts only)."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("repro-")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# Worker functions must be module-level so the spawn transport can pickle
# references to them.
def _echo_shard(payload, items):
    return list(items)


def _failing_shard(payload, items):
    raise ValueError("worker says no")


def _crashing_shard(payload, items):
    os._exit(13)


def _report_kernel_pairs(config, items):
    return effective_kernel_min_pairs(config)


class TestSharedArrayStore:
    def test_roundtrip_preserves_values_shapes_and_alignment(self):
        arrays = [
            np.arange(12, dtype=np.int32).reshape(3, 4),
            np.linspace(0.0, 1.0, 7),
            np.array([[1.5, -2.5]], dtype=np.float32),
        ]
        with shm.SharedArrayStore() as store:
            refs = [store.add(array) for array in arrays]
            store.seal()
            for ref, array in zip(refs, arrays):
                assert ref.offset % 64 == 0
                view = shm.attach_array(ref)
                assert view.dtype == array.dtype
                np.testing.assert_array_equal(view, array)

    def test_views_are_read_only(self):
        with shm.SharedArrayStore() as store:
            ref = store.add(np.arange(4))
            store.seal()
            view = shm.attach_array(ref)
            with pytest.raises(ValueError):
                view[0] = 99

    def test_sealed_store_rejects_further_adds(self):
        with shm.SharedArrayStore() as store:
            store.add(np.arange(3))
            store.seal()
            with pytest.raises(ValueError):
                store.add(np.arange(3))

    def test_close_and_unlink_are_idempotent(self):
        store = shm.SharedArrayStore()
        store.add(np.arange(8))
        store.seal()
        name = store.name
        store.close()
        store.close()
        store.unlink()
        store.unlink()
        assert name not in _shm_entries()

    def test_context_manager_unlinks_on_exit(self):
        with shm.SharedArrayStore() as store:
            store.add(np.arange(5))
            store.seal()
            name = store.name
            assert name in _shm_entries()
        assert name not in _shm_entries()

    def test_unsealed_store_unlink_is_a_noop(self):
        store = shm.SharedArrayStore()
        store.add(np.arange(5))
        store.unlink()  # nothing was ever created

    def test_generated_names_fit_the_posix_limit(self):
        # macOS caps shm names at 31 characters (including the leading /).
        for _ in range(5):
            name = shm.generate_block_name()
            assert name.startswith("repro-")
            assert len(name) <= 30


class TestSharedPickler:
    def test_arrays_divert_into_the_store(self):
        payload = {
            "matrix": np.arange(600, dtype=np.int32).reshape(100, 6),
            "starts": np.linspace(0.0, 50.0, 200),
            "scalar": 42,
            "text": "untouched",
        }
        with shm.SharedArrayStore() as store:
            blob = shm.dumps_shared(payload, store)
            assert store.n_arrays == 2
            store.seal()
            # The blob carries descriptors, not array data.
            assert len(blob) < len(pickle.dumps(payload)) - 1000
            restored = pickle.loads(blob)
        np.testing.assert_array_equal(restored["matrix"], payload["matrix"])
        np.testing.assert_array_equal(restored["starts"], payload["starts"])
        assert restored["scalar"] == 42 and restored["text"] == "untouched"
        assert not restored["matrix"].flags.writeable

    def test_empty_scalar_and_object_arrays_stay_inline(self):
        payload = [
            np.empty((0, 3), dtype=np.int32),
            np.float64(3.5),
            np.array(7),
            np.array(["a", None], dtype=object),
        ]
        with shm.SharedArrayStore() as store:
            blob = shm.dumps_shared(payload, store)
            assert store.n_arrays == 0
            restored = pickle.loads(blob)
        np.testing.assert_array_equal(restored[0], payload[0])
        assert restored[2] == 7

    def test_event_node_ships_its_columnar_caches(self):
        instances = {
            0: [
                EventInstance(start=1.0, end=3.0, series="S0", symbol="On"),
                EventInstance(start=5.0, end=9.0, series="S0", symbol="On"),
            ],
            2: [EventInstance(start=2.0, end=4.0, series="S0", symbol="On")],
        }
        node = EventNode(
            event=("S0", "On"),
            bitmap=Bitmap.from_indices(3, [0, 2]),
            instances_by_sequence=instances,
        )
        node.build_sequence_arrays()
        node.instance_counts(3)
        # Plain pickle drops the derived caches...
        plain = pickle.loads(pickle.dumps(node))
        assert plain._sequence_arrays is None
        assert plain._instance_counts is None
        # ...the shared transport ships them as views.
        with shm.SharedArrayStore() as store:
            blob = shm.dumps_shared(node, store)
            store.seal()
            shipped = pickle.loads(blob)
        assert shipped.event == node.event
        assert shipped.bitmap == node.bitmap
        assert set(shipped._sequence_arrays) == {0, 2}
        for sequence_id in (0, 2):
            for side in (0, 1):
                np.testing.assert_array_equal(
                    shipped.sequence_arrays(sequence_id)[side],
                    node.sequence_arrays(sequence_id)[side],
                )
        np.testing.assert_array_equal(
            shipped.instance_counts(3), node.instance_counts(3)
        )

    def test_pattern_entry_round_trips_by_matrix(self):
        from repro.core.patterns import TemporalPattern
        from repro.core.relations import Relation

        pattern = TemporalPattern(
            events=(("S0", "On"), ("S1", "On")), relations=(Relation.FOLLOW,)
        )
        entry = PatternEntry(pattern=pattern)
        entry.add_index_row(0, (0, 1))
        entry.add_index_row(0, (1, 0))
        entry.add_index_row(3, (2, 2))
        with shm.SharedArrayStore() as store:
            blob = shm.dumps_shared(entry, store)
            assert store.n_arrays == 2  # one matrix per supporting sequence
            store.seal()
            shipped = pickle.loads(blob)
        assert shipped.pattern == entry.pattern
        assert not shipped.is_summary
        assert shipped.sequence_ids() == {0, 3}
        np.testing.assert_array_equal(shipped.index_matrix(0), entry.index_matrix(0))
        np.testing.assert_array_equal(shipped.index_matrix(3), entry.index_matrix(3))

    def test_summarised_entry_round_trips_by_counts(self):
        entry = PatternEntry(pattern=("stub",), occurrence_counts={1: 4, 5: 2})
        with shm.SharedArrayStore() as store:
            blob = shm.dumps_shared(entry, store)
            shipped = pickle.loads(blob)
        assert shipped.is_summary
        assert shipped.occurrence_counts == {1: 4, 5: 2}

    def test_request_pack_and_load_round_trip(self):
        payload = {"arrays": [np.arange(100), np.ones((4, 4))], "meta": "x"}
        request, store = shm.pack_request(payload)
        try:
            assert request.name == store.name
            restored = shm.load_request(request)
            np.testing.assert_array_equal(restored["arrays"][0], payload["arrays"][0])
            assert restored["meta"] == "x"
            # Same block name resolves from the worker-side cache.
            assert shm.load_request(request) is restored
        finally:
            store.unlink()

    def test_array_free_results_skip_the_block(self):
        name = shm.generate_block_name()
        outcome = shm.pack_shared({"counts": {1: 2}}, name)
        assert not isinstance(outcome, shm.SharedOutcome)
        assert name not in _shm_entries()

    def test_pack_and_load_shared_unlink_the_block(self):
        name = shm.generate_block_name()
        outcome = shm.pack_shared({"rows": np.arange(32, dtype=np.int32)}, name)
        assert isinstance(outcome, shm.SharedOutcome)
        assert name in _shm_entries()
        restored = shm.load_shared(outcome)
        np.testing.assert_array_equal(restored["rows"], np.arange(32))
        assert name not in _shm_entries()
        # The view outlives the unlink: the mapping is retained process-wide.
        assert int(restored["rows"].sum()) == 496


class TestBackendLifecycle:
    def test_worker_exception_leaves_no_blocks(self):
        before = _shm_entries()
        with ProcessPoolBackend(
            n_workers=2, min_candidates_per_worker=1, shared_memory=True
        ) as backend:
            with pytest.raises(ValueError, match="worker says no"):
                backend.map_shards(_failing_shard, None, list(range(8)))
            assert _shm_entries() == before
            # The backend survives a worker exception.
            results = backend.map_shards(_echo_shard, None, list(range(8)))
            assert sorted(sum(results, [])) == list(range(8))

    def test_worker_crash_leaves_no_blocks_and_backend_reusable(self):
        before = _shm_entries()
        with ProcessPoolBackend(
            n_workers=2,
            min_candidates_per_worker=1,
            shared_memory=True,
            retry=RetryPolicy(max_retries=0),
        ) as backend:
            with pytest.raises(BrokenProcessPool):
                backend.map_shards(_crashing_shard, None, list(range(8)))
            assert _shm_entries() == before
            serial = MiningSession(CONFIG)
            serial.mine(random_database(3), backend=SerialBackend())
            recovered = MiningSession(CONFIG)
            recovered.mine(random_database(3), backend=backend)
            assert store_snapshot(recovered.graph) == store_snapshot(serial.graph)

    def test_pooled_crash_drops_the_broken_executor(self):
        before = _shm_entries()
        with ProcessPoolBackend(
            n_workers=2,
            min_candidates_per_worker=1,
            shared_memory=True,
            start_method="spawn",
            retry=RetryPolicy(max_retries=0),
        ) as backend:
            with pytest.raises(BrokenProcessPool):
                backend.map_shards(_crashing_shard, None, list(range(8)))
            assert backend._executor is None  # broken pool was not leaked
            assert _shm_entries() == before
            results = backend.map_shards(_echo_shard, None, list(range(8)))
            assert sorted(sum(results, [])) == list(range(8))

    def test_double_close_is_idempotent(self):
        backend = ProcessPoolBackend(n_workers=2, shared_memory=True)
        backend.close()
        backend.close()

    def test_fallback_when_shared_memory_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm, "shared_memory_available", lambda: False)
        backend = ProcessPoolBackend(
            n_workers=2, min_candidates_per_worker=1, shared_memory=True
        )
        try:
            assert backend.shared_memory is True
            assert backend.shared_memory_active is False
            database = random_database(5)
            serial = mined_tuples(MiningSession(CONFIG).mine(database))
            parallel = mined_tuples(
                MiningSession(CONFIG).mine(database, backend=backend)
            )
            assert serial == parallel
        finally:
            backend.close()

    def test_backend_from_config_threads_the_flag(self):
        backend = backend_from_config(
            MiningConfig(engine="process", n_workers=2, shared_memory=True)
        )
        try:
            assert backend.shared_memory is True
        finally:
            backend.close()
        serial = backend_from_config(MiningConfig())
        assert isinstance(serial, SerialBackend)

    def test_invalid_start_method_rejected(self):
        from repro import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(n_workers=2, start_method="telepathy")


class TestCalibrationPinning:
    def test_level_context_pins_the_calibrated_crossover(self):
        session = MiningSession(CONFIG)
        context = session._level_context(
            _graph_stub(), level=2, min_count=1, candidates=[]
        )
        assert context.config.kernel_min_pairs == effective_kernel_min_pairs(CONFIG)

    def test_explicit_setting_is_shipped_untouched(self):
        config = MiningConfig(
            min_support=0.3, min_confidence=0.3, kernel_min_pairs=512
        )
        session = MiningSession(config)
        context = session._level_context(
            _graph_stub(), level=2, min_count=1, candidates=[]
        )
        assert context.config.kernel_min_pairs == 512

    def test_scalar_config_is_not_pinned(self):
        config = CONFIG.with_vectorized(False)
        session = MiningSession(config)
        context = session._level_context(
            _graph_stub(), level=2, min_count=1, candidates=[]
        )
        assert context.config.kernel_min_pairs is None

    def test_spawn_workers_honour_the_pinned_value(self):
        # A spawn worker re-runs module init; a pinned kernel_min_pairs must
        # win over whatever its own microprobe would have calibrated.
        from dataclasses import replace

        pinned = replace(CONFIG, kernel_min_pairs=777)
        with ProcessPoolBackend(
            n_workers=2, min_candidates_per_worker=1, start_method="spawn"
        ) as backend:
            reported = backend.map_shards(
                _report_kernel_pairs, pinned, list(range(8))
            )
        assert reported and all(value == 777 for value in reported)


def _graph_stub():
    from repro.core.hpg import HierarchicalPatternGraph

    return HierarchicalPatternGraph(n_sequences=0, level1={}, levels={})
