"""Tests for the event-level MI pruning extension (paper future work)."""

from __future__ import annotations

import pytest

from repro import AHTPGM, HTPGM, ConfigurationError, MiningConfig
from repro.core.event_pruning import (
    EventCorrelationIndex,
    binary_nmi,
    build_event_correlation_index,
)
from repro.timeseries import EventInstance, SequenceDatabase, TemporalSequence


def inst(series, symbol, start, end):
    return EventInstance(start=start, end=end, series=series, symbol=symbol)


@pytest.fixture()
def tracking_db() -> SequenceDatabase:
    """A:On and B:On always co-occur; Z:On occurs in alternating sequences."""
    sequences = []
    for seq_id in range(8):
        instances = [inst("A", "On", 0, 10), inst("B", "On", 2, 8)]
        if seq_id % 2 == 0:
            instances.append(inst("Z", "On", 20, 25))
        sequences.append(TemporalSequence(seq_id, instances))
    return SequenceDatabase(sequences)


class TestBinaryNMI:
    def test_perfectly_dependent_indicators(self):
        assert binary_nmi(joint_11=4, count_x=4, count_y=4, total=8) == pytest.approx(1.0)

    def test_independent_indicators(self):
        # x occurs in half the sequences, y in half, jointly in a quarter.
        assert binary_nmi(joint_11=2, count_x=4, count_y=4, total=8) == pytest.approx(0.0, abs=1e-9)

    def test_constant_indicator_gives_zero(self):
        assert binary_nmi(joint_11=4, count_x=8, count_y=4, total=8) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            binary_nmi(joint_11=5, count_x=4, count_y=6, total=8)
        with pytest.raises(ConfigurationError):
            binary_nmi(joint_11=1, count_x=9, count_y=2, total=8)
        with pytest.raises(ConfigurationError):
            binary_nmi(joint_11=1, count_x=2, count_y=2, total=0)

    def test_bounded(self):
        for joint in range(0, 4):
            value = binary_nmi(joint, 4, 5, 10)
            assert 0.0 <= value <= 1.0


class TestEventCorrelationIndex:
    def test_correlated_events_kept_uncorrelated_pruned(self, tracking_db):
        index = build_event_correlation_index(tracking_db, mi_threshold=0.5)
        a_on, b_on, z_on = ("A", "On"), ("B", "On"), ("Z", "On")
        # A and B occur in every sequence: their indicators are constant, so the
        # NMI is 0 and the pair is below the threshold...
        assert not index.are_correlated(a_on, z_on)
        # ...but same-series pairs and identical events are never pruned.
        assert index.are_correlated(a_on, a_on)
        assert index.are_correlated(a_on, ("A", "Off"))

    def test_index_counts(self, tracking_db):
        index = build_event_correlation_index(tracking_db, mi_threshold=0.01)
        assert index.n_sequences == 8
        assert index.event_counts[("A", "On")] == 8
        assert index.event_counts[("Z", "On")] == 4
        assert isinstance(index, EventCorrelationIndex)

    def test_threshold_validation(self, tracking_db):
        with pytest.raises(ConfigurationError):
            build_event_correlation_index(tracking_db, mi_threshold=0.0)
        with pytest.raises(ConfigurationError):
            build_event_correlation_index(SequenceDatabase([]), mi_threshold=0.5)

    def test_lower_threshold_keeps_more_pairs(self, small_energy):
        _, _, sequence_db = small_energy
        loose = build_event_correlation_index(sequence_db, mi_threshold=0.01)
        strict = build_event_correlation_index(sequence_db, mi_threshold=0.5)
        assert strict.n_correlated_pairs <= loose.n_correlated_pairs


class TestEventLevelAHTPGM:
    CONFIG = MiningConfig(
        min_support=0.4, min_confidence=0.4, epsilon=1.0, min_overlap=5.0,
        tmax=360.0, max_pattern_size=3,
    )

    def test_event_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            AHTPGM(self.CONFIG, graph_density=0.5, event_mi_threshold=0.0)

    def test_event_level_pruning_is_a_subset_of_series_level(self, small_energy):
        _, symbolic_db, sequence_db = small_energy
        exact = HTPGM(self.CONFIG).mine(sequence_db)
        series_only = AHTPGM(self.CONFIG, graph_density=0.6).mine(sequence_db, symbolic_db)
        both = AHTPGM(
            self.CONFIG, graph_density=0.6, event_mi_threshold=0.05
        ).mine(sequence_db, symbolic_db)
        assert both.pattern_set() <= series_only.pattern_set() <= exact.pattern_set()

    def test_event_index_exposed_and_used(self, small_energy):
        _, symbolic_db, sequence_db = small_energy
        miner = AHTPGM(self.CONFIG, graph_density=0.8, event_mi_threshold=0.05)
        miner.mine(sequence_db, symbolic_db)
        assert miner.event_index_ is not None
        assert miner.event_index_.mi_threshold == 0.05
        # Without the option the index stays unset.
        plain = AHTPGM(self.CONFIG, graph_density=0.8)
        plain.mine(sequence_db, symbolic_db)
        assert plain.event_index_ is None

    def test_surviving_patterns_keep_exact_measures(self, small_energy):
        _, symbolic_db, sequence_db = small_energy
        exact_index = HTPGM(self.CONFIG).mine(sequence_db).pattern_index()
        result = AHTPGM(
            self.CONFIG, graph_density=0.8, event_mi_threshold=0.05
        ).mine(sequence_db, symbolic_db)
        for mined in result:
            assert exact_index[mined.pattern].support == mined.support
