"""Smoke tests for the example scripts and the public package surface.

The examples double as documentation; if they crash, the README is lying.
Each example's ``main()`` is imported and executed (they are written to finish
in a few seconds on the scaled-down datasets).
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "example",
    ["quickstart", "energy_patterns", "smartcity_patterns", "approximate_tradeoff", "pattern_analysis"],
)
def test_example_runs_to_completion(example, capsys):
    module = _load_example(example)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"example {example} produced no output"


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.timeseries",
            "repro.baselines",
            "repro.datasets",
            "repro.evaluation",
            "repro.analysis",
            "repro.io",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_exports_resolve(self):
        for module_name in ("repro.core", "repro.timeseries", "repro.analysis", "repro.evaluation"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DataError, repro.ReproError)
        assert issubclass(repro.MiningError, repro.ReproError)
        assert issubclass(repro.SymbolizationError, repro.DataError)
