"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover the library's load-bearing invariants:

* bitmap algebra behaves like finite sets;
* relation classification is a function (never two relations for one pair) and
  agrees with the individual predicates;
* pattern extend/project round-trips;
* entropy / NMI bounds;
* on random small sequence databases: support anti-monotonicity (Lemma 2),
  confidence anti-monotonicity (Lemma 6), pruning-mode invariance, baseline
  equivalence and the A ⊆ E containment.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HTPGM, Bitmap, MiningConfig, PruningMode, Relation
from repro.baselines import HDFSMiner, TPMiner
from repro.core.mutual_information import entropy
from repro.core.patterns import TemporalPattern, relation_pairs
from repro.core.relations import classify, contains, follows, overlaps
from repro.timeseries import EventInstance, SequenceDatabase, TemporalSequence

# --------------------------------------------------------------------------- strategies

bit_indices = st.lists(st.integers(min_value=0, max_value=63), max_size=20)


@st.composite
def two_bitmaps(draw):
    length = draw(st.integers(min_value=1, max_value=64))
    a = draw(st.lists(st.integers(min_value=0, max_value=length - 1), max_size=length))
    b = draw(st.lists(st.integers(min_value=0, max_value=length - 1), max_size=length))
    return Bitmap.from_indices(length, a), Bitmap.from_indices(length, b), set(a), set(b)


@st.composite
def instance_pairs(draw):
    """Two chronologically ordered instances with small integer endpoints."""
    s1 = draw(st.integers(0, 50))
    d1 = draw(st.integers(1, 30))
    s2 = draw(st.integers(s1, 60))
    d2 = draw(st.integers(1, 30))
    first = EventInstance(float(s1), float(s1 + d1), "A", "On")
    second = EventInstance(float(s2), float(s2 + d2), "B", "On")
    return first, second


@st.composite
def small_databases(draw):
    """Random sequence databases: 3-6 sequences, 3 series, short instances."""
    n_sequences = draw(st.integers(3, 6))
    series_names = ["X", "Y", "Z"]
    sequences = []
    for seq_id in range(n_sequences):
        instances = []
        n_instances = draw(st.integers(2, 6))
        for _ in range(n_instances):
            series = draw(st.sampled_from(series_names))
            start = draw(st.integers(0, 40))
            duration = draw(st.integers(2, 20))
            instances.append(
                EventInstance(float(start), float(start + duration), series, "On")
            )
        sequences.append(TemporalSequence(seq_id, instances))
    return SequenceDatabase(sequences)


RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MINING_CONFIG = MiningConfig(
    min_support=0.5, min_confidence=0.5, min_overlap=1.0, max_pattern_size=3
)


# --------------------------------------------------------------------------- bitmaps
class TestBitmapProperties:
    @given(two_bitmaps())
    def test_bitmap_algebra_matches_set_algebra(self, data):
        bitmap_a, bitmap_b, set_a, set_b = data
        assert set((bitmap_a & bitmap_b).indices()) == set_a & set_b
        assert set((bitmap_a | bitmap_b).indices()) == set_a | set_b
        assert set((bitmap_a ^ bitmap_b).indices()) == set_a ^ set_b
        assert set(bitmap_a.difference(bitmap_b).indices()) == set_a - set_b
        assert bitmap_a.count() == len(set_a)

    @given(two_bitmaps())
    def test_and_count_never_exceeds_operands(self, data):
        bitmap_a, bitmap_b, _, _ = data
        joint = (bitmap_a & bitmap_b).count()
        assert joint <= bitmap_a.count()
        assert joint <= bitmap_b.count()

    @given(two_bitmaps())
    def test_subset_relation_consistent(self, data):
        bitmap_a, bitmap_b, set_a, set_b = data
        assert bitmap_a.is_subset_of(bitmap_b) == (set_a <= set_b)


# --------------------------------------------------------------------------- relations
class TestRelationProperties:
    @given(instance_pairs(), st.floats(0, 2), st.floats(0.5, 5))
    def test_classification_agrees_with_predicates(self, pair, epsilon, min_overlap):
        first, second = pair
        if epsilon > min_overlap:
            epsilon = min_overlap
        relation = classify(first, second, epsilon, min_overlap)
        if relation is Relation.FOLLOW:
            assert follows(first, second, epsilon)
        elif relation is Relation.CONTAIN:
            assert contains(first, second, epsilon)
        elif relation is Relation.OVERLAP:
            assert overlaps(first, second, epsilon, min_overlap)
        else:
            assert not follows(first, second, epsilon)
            assert not contains(first, second, epsilon)
            assert not overlaps(first, second, epsilon, min_overlap)

    @given(instance_pairs())
    def test_classification_is_deterministic(self, pair):
        first, second = pair
        assert classify(first, second, 0.0, 1.0) is classify(first, second, 0.0, 1.0)


# --------------------------------------------------------------------------- patterns
class TestPatternProperties:
    @given(st.lists(st.sampled_from(list(Relation)), min_size=1, max_size=4))
    def test_extend_project_roundtrip(self, new_relations):
        """Extending by one event then dropping it returns the original pattern."""
        size = len(new_relations)
        events = tuple((f"S{i}", "On") for i in range(size))
        base_relations = tuple(
            Relation.FOLLOW for _ in relation_pairs(size)
        )
        base = TemporalPattern(events=events, relations=base_relations)
        extended = base.extend(("NEW", "On"), tuple(new_relations))
        assert extended.project(tuple(range(size))) == base
        assert extended.size == size + 1

    @given(st.integers(2, 6))
    def test_relation_pairs_count(self, size):
        assert len(relation_pairs(size)) == size * (size - 1) // 2


# --------------------------------------------------------------------------- information theory
class TestInformationProperties:
    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=6))
    def test_entropy_bounds(self, weights):
        total = sum(weights)
        distribution = {f"s{i}": w / total for i, w in enumerate(weights)}
        h = entropy(distribution)
        assert 0.0 <= h <= len(weights).bit_length() + 1
        # Entropy is maximised by the uniform distribution of the same arity.
        uniform = {f"s{i}": 1 / len(weights) for i in range(len(weights))}
        assert h <= entropy(uniform) + 1e-9


# --------------------------------------------------------------------------- mining invariants
class TestMiningProperties:
    @RELAXED
    @given(small_databases())
    def test_support_and_confidence_anti_monotone(self, database):
        """Lemmas 2 and 6 on random databases."""
        result = HTPGM(MINING_CONFIG).mine(database)
        index = {m.pattern: m for m in result.patterns}
        for mined in result.patterns:
            if mined.size < 3:
                continue
            for sub in mined.pattern.sub_patterns(mined.size - 1):
                assert sub in index
                assert index[sub].support >= mined.support
                assert index[sub].confidence >= mined.confidence - 1e-12

    @RELAXED
    @given(small_databases())
    def test_measures_within_bounds(self, database):
        result = HTPGM(MINING_CONFIG).mine(database)
        min_count = MINING_CONFIG.support_count(len(database))
        for mined in result.patterns:
            assert mined.support >= min_count
            assert 0.0 <= mined.relative_support <= 1.0
            assert MINING_CONFIG.min_confidence <= mined.confidence <= 1.0

    @RELAXED
    @given(small_databases())
    def test_confidence_is_the_exact_unclamped_ratio(self, database):
        """Pattern support never exceeds max event support by construction, so
        confidence = support / max_event_support lies in (0, 1] without any
        clamp (the dead ``min(confidence, 1.0)`` was removed)."""
        miner = HTPGM(MINING_CONFIG)
        result = miner.mine(database)
        graph = miner.graph_
        for mined in result.patterns:
            max_event_support = max(
                graph.event_support(event) for event in mined.pattern.events
            )
            assert 0 < mined.support <= max_event_support
            assert mined.confidence == mined.support / max_event_support
            assert 0.0 < mined.confidence <= 1.0

    @RELAXED
    @given(small_databases())
    def test_pruning_modes_agree(self, database):
        reference = HTPGM(MINING_CONFIG).mine(database).pattern_set()
        for mode in (PruningMode.NONE, PruningMode.APRIORI, PruningMode.TRANSITIVITY):
            assert HTPGM(MINING_CONFIG.with_pruning(mode)).mine(database).pattern_set() == reference

    @RELAXED
    @given(small_databases())
    def test_baselines_agree_with_exact_miner(self, database):
        reference = HTPGM(MINING_CONFIG).mine(database).pattern_set()
        assert HDFSMiner(MINING_CONFIG).mine(database).pattern_set() == reference
        assert TPMiner(MINING_CONFIG).mine(database).pattern_set() == reference

    @RELAXED
    @given(small_databases(), st.floats(0.1, 0.9))
    def test_higher_support_threshold_mines_fewer_patterns(self, database, support):
        low = HTPGM(MINING_CONFIG.with_thresholds(min_support=min(0.3, support))).mine(database)
        high = HTPGM(MINING_CONFIG.with_thresholds(min_support=max(0.7, support))).mine(database)
        assert high.pattern_set() <= low.pattern_set()
