"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io import read_time_series_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "x.csv"])
        assert args.dataset == "nist"
        assert args.scale == 0.05

    def test_mine_arguments(self):
        args = build_parser().parse_args(
            ["mine", "--input", "a.csv", "--output", "b.json", "--window", "1440",
             "--support", "0.3", "--approximate", "--density", "0.5"]
        )
        assert args.window == 1440.0
        assert args.approximate and args.density == 0.5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--dataset", "nope", "--output", "x.csv"])


class TestGenerateCommand:
    def test_generate_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "data.csv"
        code = main(
            ["generate", "--dataset", "dataport", "--scale", "0.01",
             "--attributes", "0.3", "--seed", "1", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        series_set = read_time_series_csv(output)
        assert len(series_set) >= 4
        assert "wrote" in capsys.readouterr().out


class TestMineCommand:
    @pytest.fixture()
    def csv_path(self, tmp_path):
        output = tmp_path / "data.csv"
        main(
            ["generate", "--dataset", "dataport", "--scale", "0.015",
             "--attributes", "0.4", "--seed", "2", "--output", str(output)]
        )
        return output

    def test_mine_to_json(self, csv_path, tmp_path, capsys):
        output = tmp_path / "patterns.json"
        code = main(
            ["mine", "--input", str(csv_path), "--output", str(output),
             "--window", "1440", "--support", "0.4", "--confidence", "0.4",
             "--epsilon", "1", "--min-overlap", "5", "--tmax", "360", "--max-size", "2"]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["algorithm"] == "E-HTPGM"
        assert isinstance(payload["patterns"], list)
        assert "frequent patterns" in capsys.readouterr().out

    def test_mine_to_csv_approximate(self, csv_path, tmp_path):
        output = tmp_path / "patterns.csv"
        code = main(
            ["mine", "--input", str(csv_path), "--output", str(output),
             "--window", "1440", "--support", "0.4", "--confidence", "0.4",
             "--epsilon", "1", "--min-overlap", "5", "--tmax", "360",
             "--max-size", "2", "--approximate"]
        )
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines[0].startswith("pattern,")

    def test_missing_input_reports_error(self, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(tmp_path / "missing.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code != 0 or "error" in capsys.readouterr().err

    def test_workers_without_parallel_rejected(self, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440", "--workers", "2"]
        )
        assert code == 2
        assert "--workers requires --parallel" in capsys.readouterr().err

    def test_shared_memory_without_parallel_rejected(self, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440", "--shared-memory"]
        )
        assert code == 2
        assert "--shared-memory requires --parallel" in capsys.readouterr().err

    def test_mine_parallel_shared_memory_matches_serial(self, csv_path, tmp_path):
        common = [
            "--input", str(csv_path), "--window", "1440", "--support", "0.4",
            "--confidence", "0.4", "--epsilon", "1", "--min-overlap", "5",
            "--tmax", "360", "--max-size", "2",
        ]
        serial_out = tmp_path / "serial.json"
        shm_out = tmp_path / "shm.json"
        assert main(["mine", *common, "--output", str(serial_out)]) == 0
        assert main(
            ["mine", *common, "--output", str(shm_out),
             "--parallel", "--workers", "2", "--shared-memory"]
        ) == 0
        serial = json.loads(serial_out.read_text())
        shared = json.loads(shm_out.read_text())
        assert serial["patterns"] == shared["patterns"]

    def test_mi_threshold_without_approximate_rejected(self, tmp_path, capsys):
        """--mi-threshold used to be silently ignored without --approximate."""
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440",
             "--mi-threshold", "0.5"]
        )
        assert code == 2
        assert "require --approximate" in capsys.readouterr().err

    def test_density_without_approximate_rejected(self, tmp_path, capsys):
        """--density used to be silently ignored without --approximate."""
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440",
             "--density", "0.5"]
        )
        assert code == 2
        assert "require --approximate" in capsys.readouterr().err


class TestSessionWorkflow:
    """repro mine --session / --append: the incremental CLI loop."""

    @pytest.fixture()
    def base_csv(self, tmp_path):
        output = tmp_path / "base.csv"
        main(
            ["generate", "--dataset", "dataport", "--scale", "0.015",
             "--attributes", "0.4", "--seed", "2", "--output", str(output)]
        )
        return output

    @pytest.fixture()
    def delta_csv(self, tmp_path):
        output = tmp_path / "delta.csv"
        main(
            ["generate", "--dataset", "dataport", "--scale", "0.004",
             "--attributes", "0.4", "--seed", "9", "--output", str(output)]
        )
        return output

    def _mine_args(self, csv_path, output, session=None, append=None):
        args = ["mine", "--output", str(output), "--window", "1440"]
        if append is not None:
            # Mining parameters come from the session on --append; only the
            # transform flags describe how to read the new CSV.
            args += ["--append", str(append)]
        else:
            args += ["--input", str(csv_path), "--support", "0.4",
                     "--confidence", "0.4", "--epsilon", "1",
                     "--min-overlap", "5", "--tmax", "360", "--max-size", "2"]
        if session is not None:
            args += ["--session", str(session)]
        return args

    def test_mine_saves_session_then_append_updates_it(
        self, base_csv, delta_csv, tmp_path, capsys
    ):
        from repro.io import read_session

        session_path = tmp_path / "state.bin"
        code = main(self._mine_args(base_csv, tmp_path / "p1.json", session_path))
        assert code == 0
        assert session_path.exists()
        n_base = read_session(session_path).n_sequences
        assert "saved mining session" in capsys.readouterr().out

        code = main(
            self._mine_args(None, tmp_path / "p2.json", session_path, append=delta_csv)
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "appended" in out
        session = read_session(session_path)
        assert session.n_sequences > n_base
        assert session.appends == 1
        payload = json.loads((tmp_path / "p2.json").read_text())
        assert payload["n_sequences"] == session.n_sequences

    def test_append_matches_scratch_mine_of_concatenation(
        self, base_csv, delta_csv, tmp_path
    ):
        """The CLI-level parity check: append result == re-mining both CSVs."""
        import csv as csv_module

        session_path = tmp_path / "state.bin"
        main(self._mine_args(base_csv, tmp_path / "p1.json", session_path))
        main(self._mine_args(None, tmp_path / "inc.json", session_path, append=delta_csv))

        # Concatenate the two CSVs in time: shift the delta past the base.
        def read_rows(path):
            with open(path, newline="") as handle:
                rows = list(csv_module.reader(handle))
            return rows[0], rows[1:]

        header, base_rows = read_rows(base_csv)
        delta_header, delta_rows = read_rows(delta_csv)
        assert header == delta_header
        last = float(base_rows[-1][0])
        step = float(base_rows[1][0]) - float(base_rows[0][0])
        shifted = [
            [f"{last + step * (i + 1):g}", *row[1:]]
            for i, row in enumerate(delta_rows)
        ]
        union_csv = tmp_path / "union.csv"
        with open(union_csv, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(header)
            writer.writerows(base_rows + shifted)

        main(self._mine_args(union_csv, tmp_path / "scratch.json"))
        incremental = json.loads((tmp_path / "inc.json").read_text())
        scratch = json.loads((tmp_path / "scratch.json").read_text())
        assert incremental["patterns"] == scratch["patterns"]
        assert incremental["n_sequences"] == scratch["n_sequences"]

    def test_append_rejects_mining_parameter_overrides(
        self, base_csv, delta_csv, tmp_path, capsys
    ):
        """Thresholds are session state; changing them on --append would
        silently break the incremental invariant, so it is an error."""
        session_path = tmp_path / "state.bin"
        assert main(self._mine_args(base_csv, tmp_path / "p1.json", session_path)) == 0
        code = main(
            ["mine", "--append", str(delta_csv), "--session", str(session_path),
             "--output", str(tmp_path / "p2.json"), "--window", "1440",
             "--support", "0.3", "--max-size", "3"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--support" in err and "--max-size" in err
        assert "cannot be changed on --append" in err

    def test_append_without_session_rejected(self, delta_csv, tmp_path, capsys):
        code = main(
            ["mine", "--append", str(delta_csv), "--output",
             str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code == 2
        assert "--append requires --session" in capsys.readouterr().err

    def test_append_with_input_rejected(self, base_csv, delta_csv, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(base_csv), "--append", str(delta_csv),
             "--session", str(tmp_path / "s.bin"), "--output",
             str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_missing_input_without_append_rejected(self, tmp_path, capsys):
        code = main(
            ["mine", "--output", str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code == 2
        assert "--input is required" in capsys.readouterr().err

    def test_session_with_approximate_rejected(self, base_csv, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(base_csv), "--output",
             str(tmp_path / "out.json"), "--window", "1440", "--approximate",
             "--session", str(tmp_path / "s.bin")]
        )
        assert code == 2
        assert "require the exact miner" in capsys.readouterr().err

    def test_append_to_missing_session_reports_error(self, delta_csv, tmp_path, capsys):
        code = main(
            ["mine", "--append", str(delta_csv), "--session",
             str(tmp_path / "missing.bin"), "--output",
             str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEvaluateCommand:
    def test_evaluate_prints_comparison(self, capsys):
        code = main(
            ["evaluate", "--dataset", "dataport", "--scale", "0.015",
             "--attributes", "0.4", "--support", "0.5", "--confidence", "0.5",
             "--methods", "E-HTPGM", "TPMiner"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "E-HTPGM" in out and "TPMiner" in out
        assert "runtime (s)" in out
