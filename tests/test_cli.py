"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io import read_time_series_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "x.csv"])
        assert args.dataset == "nist"
        assert args.scale == 0.05

    def test_mine_arguments(self):
        args = build_parser().parse_args(
            ["mine", "--input", "a.csv", "--output", "b.json", "--window", "1440",
             "--support", "0.3", "--approximate", "--density", "0.5"]
        )
        assert args.window == 1440.0
        assert args.approximate and args.density == 0.5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--dataset", "nope", "--output", "x.csv"])


class TestGenerateCommand:
    def test_generate_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "data.csv"
        code = main(
            ["generate", "--dataset", "dataport", "--scale", "0.01",
             "--attributes", "0.3", "--seed", "1", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        series_set = read_time_series_csv(output)
        assert len(series_set) >= 4
        assert "wrote" in capsys.readouterr().out


class TestMineCommand:
    @pytest.fixture()
    def csv_path(self, tmp_path):
        output = tmp_path / "data.csv"
        main(
            ["generate", "--dataset", "dataport", "--scale", "0.015",
             "--attributes", "0.4", "--seed", "2", "--output", str(output)]
        )
        return output

    def test_mine_to_json(self, csv_path, tmp_path, capsys):
        output = tmp_path / "patterns.json"
        code = main(
            ["mine", "--input", str(csv_path), "--output", str(output),
             "--window", "1440", "--support", "0.4", "--confidence", "0.4",
             "--epsilon", "1", "--min-overlap", "5", "--tmax", "360", "--max-size", "2"]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["algorithm"] == "E-HTPGM"
        assert isinstance(payload["patterns"], list)
        assert "frequent patterns" in capsys.readouterr().out

    def test_mine_to_csv_approximate(self, csv_path, tmp_path):
        output = tmp_path / "patterns.csv"
        code = main(
            ["mine", "--input", str(csv_path), "--output", str(output),
             "--window", "1440", "--support", "0.4", "--confidence", "0.4",
             "--epsilon", "1", "--min-overlap", "5", "--tmax", "360",
             "--max-size", "2", "--approximate"]
        )
        assert code == 0
        lines = output.read_text().splitlines()
        assert lines[0].startswith("pattern,")

    def test_missing_input_reports_error(self, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(tmp_path / "missing.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440"]
        )
        assert code != 0 or "error" in capsys.readouterr().err

    def test_workers_without_parallel_rejected(self, tmp_path, capsys):
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440", "--workers", "2"]
        )
        assert code == 2
        assert "--workers requires --parallel" in capsys.readouterr().err

    def test_mi_threshold_without_approximate_rejected(self, tmp_path, capsys):
        """--mi-threshold used to be silently ignored without --approximate."""
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440",
             "--mi-threshold", "0.5"]
        )
        assert code == 2
        assert "require --approximate" in capsys.readouterr().err

    def test_density_without_approximate_rejected(self, tmp_path, capsys):
        """--density used to be silently ignored without --approximate."""
        code = main(
            ["mine", "--input", str(tmp_path / "data.csv"), "--output",
             str(tmp_path / "out.json"), "--window", "1440",
             "--density", "0.5"]
        )
        assert code == 2
        assert "require --approximate" in capsys.readouterr().err


class TestEvaluateCommand:
    def test_evaluate_prints_comparison(self, capsys):
        code = main(
            ["evaluate", "--dataset", "dataport", "--scale", "0.015",
             "--attributes", "0.4", "--support", "0.5", "--confidence", "0.5",
             "--methods", "E-HTPGM", "TPMiner"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "E-HTPGM" in out and "TPMiner" in out
        assert "runtime (s)" in out
