"""Unit tests for MiningConfig and PruningMode (repro.core.config)."""

from __future__ import annotations

import pytest

from repro import ConfigurationError, MiningConfig, PruningMode


class TestPruningMode:
    def test_flags(self):
        assert PruningMode.ALL.uses_apriori and PruningMode.ALL.uses_transitivity
        assert PruningMode.APRIORI.uses_apriori and not PruningMode.APRIORI.uses_transitivity
        assert not PruningMode.TRANSITIVITY.uses_apriori and PruningMode.TRANSITIVITY.uses_transitivity
        assert not PruningMode.NONE.uses_apriori and not PruningMode.NONE.uses_transitivity

    def test_from_string(self):
        assert PruningMode("apriori") is PruningMode.APRIORI


class TestMiningConfigValidation:
    def test_defaults_are_valid(self):
        config = MiningConfig()
        assert config.pruning is PruningMode.ALL

    @pytest.mark.parametrize("support", [0.0, -0.1, 1.5])
    def test_invalid_support(self, support):
        with pytest.raises(ConfigurationError):
            MiningConfig(min_support=support)

    @pytest.mark.parametrize("confidence", [0.0, -0.1, 1.5])
    def test_invalid_confidence(self, confidence):
        with pytest.raises(ConfigurationError):
            MiningConfig(min_confidence=confidence)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            MiningConfig(epsilon=-0.5)

    def test_nonpositive_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            MiningConfig(min_overlap=0.0)

    def test_epsilon_larger_than_overlap_rejected(self):
        # The paper requires 0 <= epsilon << d_o.
        with pytest.raises(ConfigurationError):
            MiningConfig(epsilon=10.0, min_overlap=5.0)

    def test_invalid_tmax_and_pattern_size(self):
        with pytest.raises(ConfigurationError):
            MiningConfig(tmax=0.0)
        with pytest.raises(ConfigurationError):
            MiningConfig(max_pattern_size=0)

    def test_pruning_accepts_string(self):
        config = MiningConfig(pruning="transitivity")
        assert config.pruning is PruningMode.TRANSITIVITY


class TestMiningConfigHelpers:
    def test_support_count_ceiling(self):
        config = MiningConfig(min_support=0.5)
        assert config.support_count(4) == 2
        assert config.support_count(5) == 3  # ceil(2.5)
        assert MiningConfig(min_support=0.01).support_count(10) == 1

    def test_support_count_requires_positive_size(self):
        with pytest.raises(ConfigurationError):
            MiningConfig().support_count(0)

    def test_with_pruning_returns_copy(self):
        base = MiningConfig()
        changed = base.with_pruning("none")
        assert changed.pruning is PruningMode.NONE
        assert base.pruning is PruningMode.ALL

    def test_with_thresholds(self):
        base = MiningConfig(min_support=0.5, min_confidence=0.6)
        changed = base.with_thresholds(min_support=0.2)
        assert changed.min_support == 0.2
        assert changed.min_confidence == 0.6
        assert base.min_support == 0.5

    def test_frozen(self):
        config = MiningConfig()
        with pytest.raises(AttributeError):
            config.min_support = 0.1  # type: ignore[misc]
