"""Tests for the synthetic dataset generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.datasets import (
    ENERGY_PROFILES,
    SMARTCITY_PROFILE,
    available_datasets,
    generate_energy_series,
    generate_smartcity_series,
    make_dataset,
)


class TestEnergyGenerator:
    def test_shape_and_determinism(self):
        first = generate_energy_series(n_appliances=6, n_days=3, seed=42)
        second = generate_energy_series(n_appliances=6, n_days=3, seed=42)
        assert len(first) == 6
        assert first.names == second.names
        for name in first.names:
            assert np.allclose(first[name].values, second[name].values)

    def test_different_seeds_differ(self):
        a = generate_energy_series(n_appliances=4, n_days=3, seed=1)
        b = generate_energy_series(n_appliances=4, n_days=3, seed=2)
        assert any(not np.allclose(a[n].values, b[n].values) for n in a.names)

    def test_series_cover_requested_horizon(self):
        series_set = generate_energy_series(n_appliances=3, n_days=2, seed=0)
        for series in series_set:
            assert series.start_time == 0.0
            assert series.end_time == pytest.approx(2 * 1440 - 10)

    def test_appliances_actually_switch_on(self):
        series_set = generate_energy_series(n_appliances=8, n_days=10, seed=0)
        active = [name for name in series_set.names if np.any(series_set[name].values > 0.05)]
        # Routine appliances (about two thirds of them) must show activity.
        assert len(active) >= len(series_set) // 2

    def test_unique_names_at_large_counts(self):
        series_set = generate_energy_series(n_appliances=60, n_days=1, seed=0)
        assert len(set(series_set.names)) == 60

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_energy_series(n_appliances=0, n_days=1)
        with pytest.raises(ConfigurationError):
            generate_energy_series(n_appliances=1, n_days=0)


class TestSmartCityGenerator:
    def test_shape_and_determinism(self):
        first = generate_smartcity_series(n_variables=10, n_days=3, seed=7)
        second = generate_smartcity_series(n_variables=10, n_days=3, seed=7)
        assert len(first) == 10
        for name in first.names:
            assert np.allclose(first[name].values, second[name].values)

    def test_collision_counts_are_non_negative(self):
        series_set = generate_smartcity_series(n_variables=20, n_days=5, seed=0)
        for name in series_set.names:
            if "Injury" in name or "Killed" in name:
                assert np.all(series_set[name].values >= 0)

    def test_collisions_correlate_with_storminess(self):
        """Adverse weather drives collisions: precipitation and motorist injury
        must be positively correlated, unlike an unrelated noise sensor."""
        series_set = generate_smartcity_series(n_variables=20, n_days=60, seed=3)
        precipitation = series_set["Precipitation"].values
        injuries = series_set["Motorist Injury"].values
        corr = np.corrcoef(precipitation, injuries)[0, 1]
        assert corr > 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_smartcity_series(n_variables=1, n_days=1)
        with pytest.raises(ConfigurationError):
            generate_smartcity_series(n_variables=3, n_days=0)
        with pytest.raises(ConfigurationError):
            generate_smartcity_series(n_variables=3, n_days=1, sampling_interval=0)


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"nist", "ukdale", "dataport", "smartcity"}

    def test_profiles_match_paper_table_iv(self):
        assert ENERGY_PROFILES["nist"]["n_variables"] == 72
        assert ENERGY_PROFILES["ukdale"]["n_sequences"] == 1520
        assert ENERGY_PROFILES["dataport"]["n_variables"] == 21
        assert SMARTCITY_PROFILE["n_variables"] == 59

    def test_scale_controls_sequence_count(self):
        small = make_dataset("dataport", scale=0.02, seed=0)
        _, seq_small = small.transform()
        larger = make_dataset("dataport", scale=0.04, seed=0)
        _, seq_larger = larger.transform()
        assert len(seq_larger) > len(seq_small)

    def test_attribute_fraction_controls_variable_count(self):
        narrow = make_dataset("nist", scale=0.01, attribute_fraction=0.1, seed=0)
        wide = make_dataset("nist", scale=0.01, attribute_fraction=0.3, seed=0)
        assert narrow.n_variables < wide.n_variables

    def test_restrict_attributes(self):
        dataset = make_dataset("dataport", scale=0.02, seed=0)
        restricted = dataset.restrict_attributes(0.5)
        assert restricted.n_variables == max(2, round(dataset.n_variables * 0.5))
        assert restricted.series_set.names == dataset.series_set.names[: restricted.n_variables]
        with pytest.raises(ConfigurationError):
            dataset.restrict_attributes(0.0)

    def test_smartcity_uses_multi_state_symbolizers(self):
        dataset = make_dataset("smartcity", scale=0.01, attribute_fraction=0.2, seed=0)
        symbolic_db, _ = dataset.transform()
        alphabet_sizes = {len(series.alphabet) for series in symbolic_db}
        assert alphabet_sizes <= {4, 5}
        assert len(alphabet_sizes) >= 1

    def test_energy_transform_produces_on_off_events(self):
        dataset = make_dataset("ukdale", scale=0.015, attribute_fraction=0.15, seed=0)
        _, sequence_db = dataset.transform()
        symbols = {key[1] for key in sequence_db.event_keys()}
        assert symbols <= {"On", "Off"}
        assert len(sequence_db) >= 8

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            make_dataset("does-not-exist")

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            make_dataset("nist", scale=0.0)
        with pytest.raises(ConfigurationError):
            make_dataset("nist", attribute_fraction=2.0)
