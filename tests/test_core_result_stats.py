"""Unit tests for MiningResult / MinedPattern / MiningStatistics."""

from __future__ import annotations

import pytest

from repro import HTPGM, MiningConfig, Relation, TemporalPattern
from repro.core.patterns import PatternMeasures
from repro.core.result import MinedPattern, MiningResult
from repro.core.stats import MiningStatistics

K = ("K", "On")
T = ("T", "On")
M = ("M", "On")


def mined(events, relations, support, n_sequences=4, confidence=0.5):
    return MinedPattern(
        pattern=TemporalPattern(events=events, relations=relations),
        measures=PatternMeasures(
            support=support,
            relative_support=support / n_sequences,
            confidence=confidence,
        ),
    )


@pytest.fixture()
def result() -> MiningResult:
    patterns = [
        mined((K, T), (Relation.CONTAIN,), support=3, confidence=0.75),
        mined((K, M), (Relation.CONTAIN,), support=2, confidence=0.5),
        mined((K, T, M), (Relation.CONTAIN, Relation.CONTAIN, Relation.FOLLOW), support=2, confidence=0.6),
    ]
    return MiningResult(
        patterns=patterns,
        config=MiningConfig(min_support=0.5, min_confidence=0.5, min_overlap=1.0),
        n_sequences=4,
        runtime_seconds=0.1,
    )


class TestMiningResult:
    def test_len_iter_contains(self, result):
        assert len(result) == 3
        assert all(isinstance(m, MinedPattern) for m in result)
        assert TemporalPattern((K, T), (Relation.CONTAIN,)) in result
        assert TemporalPattern((T, K), (Relation.CONTAIN,)) not in result

    def test_counts_by_size(self, result):
        assert result.counts_by_size() == {2: 2, 3: 1}

    def test_patterns_of_size(self, result):
        assert len(result.patterns_of_size(2)) == 2
        assert len(result.patterns_of_size(5)) == 0

    def test_involving_event_and_series(self, result):
        assert len(result.involving_event(M)) == 2
        assert len(result.involving_series("K")) == 3
        assert result.involving_series("Z") == []

    def test_top_by_support_and_confidence(self, result):
        by_support = result.top(2, by="support")
        assert by_support[0].support == 3
        by_confidence = result.top(1, by="confidence")
        assert by_confidence[0].confidence == pytest.approx(0.75)
        with pytest.raises(ValueError):
            result.top(1, by="unknown")

    def test_to_records(self, result):
        records = result.to_records()
        assert len(records) == 3
        first = records[0]
        assert set(first) == {
            "pattern",
            "size",
            "events",
            "relations",
            "support",
            "relative_support",
            "confidence",
        }
        assert first["events"] == ["K:On", "T:On"]

    def test_summary_mentions_counts(self, result):
        text = result.summary()
        assert "3 frequent patterns" in text
        assert "2-event patterns: 2" in text

    def test_mined_pattern_describe(self, result):
        text = result.patterns[0].describe()
        assert "K:On < T:On" in text
        assert "supp=75%" in text


class TestMiningStatistics:
    def test_counters_via_real_run(self, paper_sequence_db):
        miner = HTPGM(MiningConfig(min_support=0.5, min_confidence=0.5, min_overlap=1.0))
        result = miner.mine(paper_sequence_db)
        stats = result.statistics
        assert stats.n_sequences == 4
        assert stats.events_scanned == 6
        assert stats.frequent_events == 5
        assert stats.total_patterns >= len(result) + stats.frequent_events
        assert stats.max_level == 4
        assert stats.total_candidates > 0
        assert set(stats.level_seconds) >= {1, 2, 3, 4}

    def test_bump_and_totals(self):
        stats = MiningStatistics()
        stats.bump(stats.candidates_generated, 2)
        stats.bump(stats.candidates_generated, 2, 4)
        stats.bump(stats.pruned_support, 2)
        assert stats.candidates_generated[2] == 5
        assert stats.total_candidates == 5
        assert stats.total_pruned == 1
        assert stats.max_level == 0

    def test_zero_amount_bump_is_a_noop(self):
        """Regression: zero-amount bumps must not create {level: 0} entries."""
        stats = MiningStatistics()
        stats.bump(stats.pruned_transitivity_events, 3, 0)
        assert stats.pruned_transitivity_events == {}
        assert stats.as_dict()["pruned_transitivity_events"] == {}
        # An existing entry is left untouched by a later zero-amount bump.
        stats.bump(stats.pruned_transitivity_events, 3, 2)
        stats.bump(stats.pruned_transitivity_events, 3, 0)
        assert stats.pruned_transitivity_events == {3: 2}

    def test_real_run_counters_carry_no_zero_entries(self, paper_sequence_db):
        """The transitivity bump in HTPGM._mine_level used to record zeros at
        every level where Lemma 5 removed nothing."""
        miner = HTPGM(MiningConfig(min_support=0.5, min_confidence=0.5, min_overlap=1.0))
        stats = miner.mine(paper_sequence_db).statistics
        assert 0 not in stats.pruned_transitivity_events.values()
        assert 0 not in stats.pruned_relation_checks.values()

    def test_as_dict_round_trips_counters(self):
        stats = MiningStatistics(n_sequences=7)
        stats.bump(stats.patterns_found, 2, 3)
        payload = stats.as_dict()
        assert payload["n_sequences"] == 7
        assert payload["patterns_found"] == {2: 3}
        assert payload["total_patterns"] == 3
        assert payload["correlation_seconds"] == 0.0

    def test_correlation_seconds_recorded_by_approximate_miner(self, small_energy):
        from repro import AHTPGM

        _, symbolic_db, sequence_db = small_energy
        config = MiningConfig(
            min_support=0.4, min_confidence=0.4, epsilon=1.0,
            min_overlap=5.0, tmax=360.0, max_pattern_size=2,
        )
        result = AHTPGM(config, graph_density=0.6).mine(sequence_db, symbolic_db)
        assert result.statistics.correlation_seconds > 0.0
        exact = HTPGM(config).mine(sequence_db)
        assert exact.statistics.correlation_seconds == 0.0


class TestStatisticsMerging:
    def test_absorb_counters_adds_per_level(self):
        main = MiningStatistics(n_sequences=10)
        main.bump(main.candidates_generated, 2, 3)
        shard = MiningStatistics()
        shard.bump(shard.candidates_generated, 2, 4)
        shard.bump(shard.patterns_found, 3, 2)
        main.absorb_counters(shard)
        assert main.candidates_generated == {2: 7}
        assert main.patterns_found == {3: 2}
        # Scalar database facts stay owned by the run-level object.
        assert main.n_sequences == 10

    def test_absorb_counters_ignores_level_seconds(self):
        main = MiningStatistics()
        shard = MiningStatistics()
        shard.level_seconds[2] = 5.0
        main.absorb_counters(shard)
        assert main.level_seconds == {}

    def test_merge_shard_takes_max_of_wall_clock_not_sum(self):
        """Concurrent shards overlap in time: the level costs its slowest shard.

        Summing the per-worker times would report ~n_workers times the true
        wall-clock for a perfectly balanced level.
        """
        main = MiningStatistics()
        for seconds in (0.4, 1.5, 0.9):
            shard = MiningStatistics()
            shard.level_seconds[2] = seconds
            shard.bump(shard.relation_checks, 2, 10)
            main.merge_shard(shard)
        assert main.level_seconds[2] == pytest.approx(1.5)  # max, not 2.8
        assert main.relation_checks[2] == 30  # counters still add

    def test_merge_shard_keeps_existing_levels(self):
        main = MiningStatistics()
        main.level_seconds[2] = 2.0
        shard = MiningStatistics()
        shard.level_seconds[2] = 1.0
        shard.level_seconds[3] = 0.5
        main.merge_shard(shard)
        assert main.level_seconds == {2: 2.0, 3: 0.5}
