"""Fuzz parity between the vectorized relation kernel and the scalar classifier.

The scalar :func:`repro.core.relations.classify` is the executable
specification of Defs. 3.6–3.8 (including the Follow ≻ Contain ≻ Overlap
priority); :func:`repro.core.relation_kernel.classify_pairs` must agree with
it bit for bit on every ordered interval pair.  These tests fuzz that
equivalence over ~10k random pairs — drawn from a coarse grid so boundary-equal
endpoints occur constantly — across epsilon/min_overlap settings, plus
directed edge cases, empty batches and the ``searchsorted`` window helpers.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import ConfigurationError
from repro.core.relation_kernel import (
    CONTAIN_CODE,
    FOLLOW_CODE,
    NO_RELATION_CODE,
    OVERLAP_CODE,
    candidate_windows,
    classify_pairs,
    expand_windows,
)
from repro.core.relations import (
    RELATION_CODES,
    RELATIONS_BY_CODE,
    Relation,
    classify,
)
from repro.timeseries import EventInstance


def scalar_code(e1: EventInstance, e2: EventInstance, epsilon, min_overlap) -> int:
    relation = classify(e1, e2, epsilon, min_overlap)
    return NO_RELATION_CODE if relation is None else RELATION_CODES[relation]


def kernel_codes(pairs, epsilon, min_overlap) -> np.ndarray:
    return classify_pairs(
        np.array([p[0].start for p in pairs]),
        np.array([p[0].end for p in pairs]),
        np.array([p[1].start for p in pairs]),
        np.array([p[1].end for p in pairs]),
        epsilon,
        min_overlap,
    )


def random_ordered_pairs(seed: int, n_pairs: int) -> list[tuple[EventInstance, EventInstance]]:
    """Random chronologically ordered pairs on a coarse half-unit grid.

    The grid makes endpoint coincidences (equal starts, end == partner start,
    identical intervals) common instead of measure-zero, which is where the
    priority rules and the ``>=`` / ``>`` distinctions actually bite.
    """
    rng = random.Random(seed)
    pairs = []
    for index in range(n_pairs):
        def instance(tag: str) -> EventInstance:
            start = rng.randrange(0, 40) / 2.0
            duration = rng.randrange(0, 20) / 2.0
            return EventInstance(start, start + duration, f"S{tag}", "On")

        e1, e2 = instance("a"), instance("b")
        if (e1.start, e1.end) > (e2.start, e2.end):
            e1, e2 = (
                EventInstance(e2.start, e2.end, "Sa", "On"),
                EventInstance(e1.start, e1.end, "Sb", "On"),
            )
        pairs.append((e1, e2))
    return pairs


class TestCodeTable:
    def test_codes_match_relation_table(self):
        assert RELATIONS_BY_CODE[FOLLOW_CODE] is Relation.FOLLOW
        assert RELATIONS_BY_CODE[CONTAIN_CODE] is Relation.CONTAIN
        assert RELATIONS_BY_CODE[OVERLAP_CODE] is Relation.OVERLAP
        assert Relation.FOLLOW.code == FOLLOW_CODE
        assert Relation.CONTAIN.code == CONTAIN_CODE
        assert Relation.OVERLAP.code == OVERLAP_CODE
        assert NO_RELATION_CODE == -1
        assert len(RELATIONS_BY_CODE) == len(RELATION_CODES) == 3


class TestFuzzParity:
    @pytest.mark.parametrize(
        "epsilon,min_overlap",
        [(0.0, 1e-9), (0.0, 1.0), (0.5, 1.0), (1.0, 1.0), (0.25, 0.25), (0.0, 3.5)],
    )
    def test_kernel_matches_scalar_on_random_pairs(self, epsilon, min_overlap):
        pairs = random_ordered_pairs(seed=int(epsilon * 100 + min_overlap * 7), n_pairs=2000)
        expected = [scalar_code(e1, e2, epsilon, min_overlap) for e1, e2 in pairs]
        actual = kernel_codes(pairs, epsilon, min_overlap)
        assert actual.dtype == np.int8
        assert actual.tolist() == expected

    def test_kernel_matches_scalar_with_broadcast_shapes(self):
        """The block shape used by the miner: (n_occurrences, 1) × (n_new,)."""
        rng = random.Random(99)
        lefts = sorted(
            EventInstance(rng.randrange(0, 20) / 2.0, rng.randrange(0, 20) / 2.0 + 10.0, "L", "On")
            for _ in range(25)
        )
        rights = sorted(
            EventInstance(10.0 + rng.randrange(0, 20) / 2.0, 10.0 + rng.randrange(0, 30) / 2.0 + 10.0, "R", "On")
            for _ in range(40)
        )
        codes = classify_pairs(
            np.array([i.start for i in lefts])[:, None],
            np.array([i.end for i in lefts])[:, None],
            np.array([i.start for i in rights]),
            np.array([i.end for i in rights]),
            epsilon=0.5,
            min_overlap=1.0,
        )
        assert codes.shape == (25, 40)
        for row, e1 in enumerate(lefts):
            for column, e2 in enumerate(rights):
                assert codes[row, column] == scalar_code(e1, e2, 0.5, 1.0)


class TestBoundaryCases:
    def make(self, start, end, series="A"):
        return EventInstance(start, end, series, "On")

    def check(self, e1, e2, epsilon, min_overlap, expected_code):
        assert scalar_code(e1, e2, epsilon, min_overlap) == expected_code
        assert kernel_codes([(e1, e2)], epsilon, min_overlap)[0] == expected_code

    def test_exact_meet_is_follow(self):
        # e1.end == e2.start: Follow with or without epsilon.
        self.check(self.make(0, 5), self.make(5, 8), 0.0, 1e-9, FOLLOW_CODE)

    def test_epsilon_turns_small_overlap_into_follow(self):
        # e1 runs 0..5, e2 starts at 4.5: Overlap without slack, Follow with
        # epsilon=0.5 — and Follow wins by priority.
        self.check(self.make(0, 5), self.make(4.5, 9), 0.0, 0.4, OVERLAP_CODE)
        self.check(self.make(0, 5), self.make(4.5, 9), 0.5, 0.5, FOLLOW_CODE)

    def test_identical_instants_prefer_follow_under_epsilon(self):
        # Two zero-length instants at the same time satisfy both Follow and
        # Contain; the priority must pick Follow (paper's tie-break).
        self.check(self.make(3, 3), self.make(3, 3, "B"), 0.5, 0.5, FOLLOW_CODE)

    def test_identical_intervals_are_contain(self):
        self.check(self.make(2, 7), self.make(2, 7, "B"), 0.0, 1e-9, CONTAIN_CODE)

    def test_containment_with_epsilon_slack_at_the_end(self):
        # e2 pokes 0.4 past e1's end: Contain only once epsilon covers it.
        self.check(self.make(0, 10), self.make(2, 10.4), 0.0, 1e-9, OVERLAP_CODE)
        self.check(self.make(0, 10), self.make(2, 10.4), 0.4, 0.4, CONTAIN_CODE)

    def test_overlap_exactly_at_min_overlap_boundary(self):
        # Overlap duration == min_overlap: the >= makes it an Overlap ...
        self.check(self.make(0, 6), self.make(4, 9), 0.0, 2.0, OVERLAP_CODE)
        # ... one tick above min_overlap it fails (no relation at all).
        self.check(self.make(0, 6), self.make(4.5, 9), 0.0, 2.0, NO_RELATION_CODE)

    def test_short_overlap_is_no_relation(self):
        self.check(self.make(0, 5), self.make(4.9, 9), 0.0, 1.0, NO_RELATION_CODE)

    def test_empty_batch(self):
        empty = np.empty(0, dtype=np.float64)
        codes = classify_pairs(empty, empty, empty, empty, 0.0, 1.0)
        assert codes.dtype == np.int8
        assert codes.shape == (0,)

    def test_invalid_parameters_rejected_like_scalar(self):
        empty = np.empty(0, dtype=np.float64)
        with pytest.raises(ConfigurationError):
            classify_pairs(empty, empty, empty, empty, epsilon=-0.1)
        with pytest.raises(ConfigurationError):
            classify_pairs(empty, empty, empty, empty, min_overlap=0.0)


class TestWindows:
    def test_windows_cover_exactly_the_feasible_start_gap(self):
        starts = np.array([0.0, 1.0, 4.0, 4.0, 9.0, 15.0])
        lo, hi = candidate_windows(starts, np.array([4.0]), tmax=5.0)
        # Feasible partners have starts within [-1, 9]: indices 0..4.
        assert (lo[0], hi[0]) == (0, 5)

    def test_windows_without_tmax_span_everything(self):
        starts = np.array([0.0, 2.0, 8.0])
        lo, hi = candidate_windows(starts, np.array([2.0, 8.0]), tmax=None)
        assert lo.tolist() == [0, 0]
        assert hi.tolist() == [3, 3]

    def test_window_prefilter_never_drops_a_tmax_survivor(self):
        """Fuzz: every pair passing the exact tmax check lies inside the window."""
        rng = random.Random(5)
        starts = np.sort(np.array([rng.uniform(0, 100) for _ in range(80)]))
        ends = starts + np.array([rng.uniform(0, 30) for _ in range(80)])
        anchors_start = np.sort(np.array([rng.uniform(0, 100) for _ in range(40)]))
        anchors_end = anchors_start + np.array([rng.uniform(0, 30) for _ in range(40)])
        tmax = 20.0
        lo, hi = candidate_windows(starts, anchors_start, tmax)
        for a in range(len(anchors_start)):
            for b in range(len(starts)):
                first_start = min(anchors_start[a], starts[b])
                second_end = max(anchors_end[a], ends[b])
                if second_end - first_start <= tmax:
                    assert lo[a] <= b < hi[a], (a, b)

    def test_expand_windows_enumeration_order(self):
        left, right = expand_windows(np.array([1, 0, 3]), np.array([3, 0, 5]))
        assert left.tolist() == [0, 0, 2, 2]
        assert right.tolist() == [1, 2, 3, 4]

    def test_expand_windows_empty(self):
        left, right = expand_windows(np.array([2]), np.array([2]))
        assert left.size == 0 and right.size == 0
        left, right = expand_windows(np.empty(0, np.intp), np.empty(0, np.intp))
        assert left.size == 0 and right.size == 0
