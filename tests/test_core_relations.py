"""Unit tests for the temporal relations (paper Defs. 3.6-3.8, Table II)."""

from __future__ import annotations

import pytest

from repro import ConfigurationError, EventInstance, Relation
from repro.core.relations import classify, contains, follows, overlaps


def inst(start, end, series="X", symbol="On"):
    return EventInstance(start=start, end=end, series=series, symbol=symbol)


class TestFollow:
    def test_basic_follow(self):
        assert follows(inst(0, 5), inst(6, 10))

    def test_meeting_intervals_follow(self):
        # te1 <= ts2 with equality: "meets" counts as Follow.
        assert follows(inst(0, 5), inst(5, 10))

    def test_overlapping_not_follow(self):
        assert not follows(inst(0, 6), inst(5, 10))

    def test_epsilon_tolerates_small_overlap(self):
        # With a one-minute buffer, ending one minute after the next start
        # still counts as Follow (Def. 3.6: te1 - eps <= ts2).
        assert follows(inst(0, 6), inst(5, 10), epsilon=1.0)


class TestContain:
    def test_basic_contain(self):
        assert contains(inst(0, 20), inst(5, 15))

    def test_equal_intervals_contain(self):
        assert contains(inst(0, 10), inst(0, 10))

    def test_extending_beyond_end_not_contained(self):
        assert not contains(inst(0, 10), inst(5, 15))

    def test_epsilon_tolerates_slight_overrun(self):
        assert contains(inst(0, 10), inst(5, 11), epsilon=1.0)


class TestOverlap:
    def test_basic_overlap(self):
        assert overlaps(inst(0, 10), inst(5, 20), min_overlap=1.0)

    def test_overlap_requires_minimum_duration(self):
        # Only 0.5 time units of overlap: below d_o = 1.
        assert not overlaps(inst(0, 5.5), inst(5, 20), min_overlap=1.0)

    def test_disjoint_not_overlap(self):
        assert not overlaps(inst(0, 5), inst(10, 20), min_overlap=1.0)

    def test_contained_not_overlap(self):
        assert not overlaps(inst(0, 30), inst(5, 15), min_overlap=1.0)


class TestClassify:
    def test_classification_matches_individual_predicates(self):
        assert classify(inst(0, 5), inst(6, 10), min_overlap=1.0) is Relation.FOLLOW
        assert classify(inst(0, 20), inst(5, 15), min_overlap=1.0) is Relation.CONTAIN
        assert classify(inst(0, 10), inst(5, 20), min_overlap=1.0) is Relation.OVERLAP

    def test_none_when_no_relation_holds(self):
        # Overlap shorter than d_o and neither Follow nor Contain.
        assert classify(inst(0, 5.5), inst(5, 20), min_overlap=1.0) is None

    def test_mutually_exclusive_priority(self):
        """Every ordered instance pair maps to at most one relation."""
        pairs = [
            (inst(0, 5), inst(5, 10)),
            (inst(0, 10), inst(0, 10)),
            (inst(0, 10), inst(2, 8)),
            (inst(0, 10), inst(5, 30)),
            (inst(0, 3), inst(20, 21)),
        ]
        for first, second in pairs:
            relation = classify(first, second, epsilon=0.5, min_overlap=1.0)
            matches = [
                follows(first, second, 0.5),
                relation is not None and not follows(first, second, 0.5) and contains(first, second, 0.5),
                relation is not None
                and not follows(first, second, 0.5)
                and not contains(first, second, 0.5)
                and overlaps(first, second, 0.5, 1.0),
            ]
            # The classifier picks the first matching predicate in priority order.
            if relation is Relation.FOLLOW:
                assert matches[0]
            elif relation is Relation.CONTAIN:
                assert matches[1]
            elif relation is Relation.OVERLAP:
                assert matches[2]

    def test_requires_chronological_order(self):
        with pytest.raises(ConfigurationError):
            classify(inst(10, 20), inst(0, 5))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            classify(inst(0, 1), inst(2, 3), epsilon=-1.0)
        with pytest.raises(ConfigurationError):
            classify(inst(0, 1), inst(2, 3), min_overlap=0.0)

    def test_relation_symbols_and_str(self):
        assert Relation.FOLLOW.symbol == "->"
        assert Relation.CONTAIN.symbol == "<"
        assert Relation.OVERLAP.symbol == "G"
        assert str(Relation.FOLLOW) == "Follow"

    def test_paper_table_iii_examples(self):
        """Relations from the paper's running example (Fig. 1 / Table III)."""
        kitchen = inst(360, 420, "K", "On")   # 06:00-07:00
        toaster = inst(361, 405, "T", "On")   # 06:01-06:45
        microwave = inst(420, 430, "M", "On")  # 07:00-07:10
        assert classify(kitchen, toaster, min_overlap=1.0) is Relation.CONTAIN
        assert classify(kitchen, microwave, min_overlap=1.0) is Relation.FOLLOW
        assert classify(toaster, microwave, min_overlap=1.0) is Relation.FOLLOW
