"""Unit tests for the bitmap index (repro.core.bitmap)."""

from __future__ import annotations

import pytest

from repro import Bitmap, ConfigurationError


class TestConstruction:
    def test_empty_bitmap(self):
        bitmap = Bitmap(8)
        assert bitmap.count() == 0
        assert len(bitmap) == 8
        assert not bitmap

    def test_from_indices(self):
        bitmap = Bitmap.from_indices(10, [0, 3, 9])
        assert bitmap.count() == 3
        assert list(bitmap.indices()) == [0, 3, 9]

    def test_from_indices_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Bitmap.from_indices(4, [4])
        with pytest.raises(ConfigurationError):
            Bitmap.from_indices(4, [-1])

    def test_full(self):
        bitmap = Bitmap.full(5)
        assert bitmap.count() == 5
        assert list(bitmap.indices()) == [0, 1, 2, 3, 4]

    def test_zero_length(self):
        bitmap = Bitmap.full(0)
        assert bitmap.count() == 0
        assert list(bitmap.indices()) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(-1)

    def test_excess_bits_masked(self):
        bitmap = Bitmap(3, bits=0b11111)
        assert bitmap.count() == 3


class TestBitOperations:
    def test_set_get_clear(self):
        bitmap = Bitmap(6)
        bitmap.set(2)
        assert bitmap.get(2)
        assert not bitmap.get(3)
        bitmap.clear(2)
        assert not bitmap.get(2)

    def test_index_bounds_checked(self):
        bitmap = Bitmap(4)
        with pytest.raises(ConfigurationError):
            bitmap.get(4)
        with pytest.raises(ConfigurationError):
            bitmap.set(-1)

    def test_and_is_support_of_combination(self):
        # The paper's level-2 step: supp(Ei, Ej) = popcount(AND(b_i, b_j)).
        a = Bitmap.from_indices(6, [0, 1, 2, 5])
        b = Bitmap.from_indices(6, [1, 2, 3])
        assert (a & b).count() == 2
        assert list((a & b).indices()) == [1, 2]

    def test_or_xor_invert_difference(self):
        a = Bitmap.from_indices(4, [0, 1])
        b = Bitmap.from_indices(4, [1, 2])
        assert list((a | b).indices()) == [0, 1, 2]
        assert list((a ^ b).indices()) == [0, 2]
        assert list((~a).indices()) == [2, 3]
        assert list(a.difference(b).indices()) == [0]

    def test_subset(self):
        a = Bitmap.from_indices(5, [1, 2])
        b = Bitmap.from_indices(5, [0, 1, 2, 3])
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(3) & Bitmap(4)

    def test_non_bitmap_operand_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(3) & 7  # type: ignore[operator]


class TestEqualityHash:
    def test_equality_and_hash(self):
        a = Bitmap.from_indices(5, [1, 3])
        b = Bitmap.from_indices(5, [1, 3])
        c = Bitmap.from_indices(6, [1, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a bitmap"

    def test_usable_as_dict_key(self):
        mapping = {Bitmap.from_indices(3, [0]): "x"}
        assert mapping[Bitmap.from_indices(3, [0])] == "x"


class TestBulkAlgebra:
    def test_intersect_all_matches_chained_and(self):
        a = Bitmap.from_indices(8, [0, 1, 2, 5])
        b = Bitmap.from_indices(8, [1, 2, 5, 7])
        c = Bitmap.from_indices(8, [2, 5, 6])
        assert Bitmap.intersect_all([a, b, c]) == (a & b) & c
        assert list(Bitmap.intersect_all([a, b, c]).indices()) == [2, 5]

    def test_union_all_matches_chained_or(self):
        a = Bitmap.from_indices(6, [0])
        b = Bitmap.from_indices(6, [3])
        c = Bitmap.from_indices(6, [5])
        assert Bitmap.union_all([a, b, c]) == (a | b) | c
        assert list(Bitmap.union_all([a, b, c]).indices()) == [0, 3, 5]

    def test_single_operand_is_identity(self):
        a = Bitmap.from_indices(5, [1, 4])
        assert Bitmap.intersect_all([a]) == a
        assert Bitmap.union_all([a]) == a

    def test_accepts_generators(self):
        maps = [Bitmap.from_indices(4, [i]) for i in range(3)]
        assert Bitmap.union_all(m for m in maps).count() == 3

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap.intersect_all([])
        with pytest.raises(ConfigurationError):
            Bitmap.union_all(iter(()))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap.intersect_all([Bitmap(3), Bitmap(4)])
        with pytest.raises(ConfigurationError):
            Bitmap.union_all([Bitmap.full(2), Bitmap.full(3)])

    def test_non_bitmap_operand_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap.intersect_all([7, Bitmap(3)])  # type: ignore[list-item]
        with pytest.raises(ConfigurationError):
            Bitmap.union_all([Bitmap(3), 7])  # type: ignore[list-item]

    def test_result_is_independent_copy(self):
        a = Bitmap.from_indices(4, [0, 1])
        merged = Bitmap.union_all([a, Bitmap.from_indices(4, [2])])
        merged.clear(0)
        assert a.get(0)  # the input bitmap is untouched
