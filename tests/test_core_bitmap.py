"""Unit tests for the bitmap index (repro.core.bitmap)."""

from __future__ import annotations

import pytest

from repro import Bitmap, ConfigurationError


class TestConstruction:
    def test_empty_bitmap(self):
        bitmap = Bitmap(8)
        assert bitmap.count() == 0
        assert len(bitmap) == 8
        assert not bitmap

    def test_from_indices(self):
        bitmap = Bitmap.from_indices(10, [0, 3, 9])
        assert bitmap.count() == 3
        assert list(bitmap.indices()) == [0, 3, 9]

    def test_from_indices_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Bitmap.from_indices(4, [4])
        with pytest.raises(ConfigurationError):
            Bitmap.from_indices(4, [-1])

    def test_full(self):
        bitmap = Bitmap.full(5)
        assert bitmap.count() == 5
        assert list(bitmap.indices()) == [0, 1, 2, 3, 4]

    def test_zero_length(self):
        bitmap = Bitmap.full(0)
        assert bitmap.count() == 0
        assert list(bitmap.indices()) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(-1)

    def test_excess_bits_masked(self):
        bitmap = Bitmap(3, bits=0b11111)
        assert bitmap.count() == 3


class TestBitOperations:
    def test_set_get_clear(self):
        bitmap = Bitmap(6)
        bitmap.set(2)
        assert bitmap.get(2)
        assert not bitmap.get(3)
        bitmap.clear(2)
        assert not bitmap.get(2)

    def test_index_bounds_checked(self):
        bitmap = Bitmap(4)
        with pytest.raises(ConfigurationError):
            bitmap.get(4)
        with pytest.raises(ConfigurationError):
            bitmap.set(-1)

    def test_and_is_support_of_combination(self):
        # The paper's level-2 step: supp(Ei, Ej) = popcount(AND(b_i, b_j)).
        a = Bitmap.from_indices(6, [0, 1, 2, 5])
        b = Bitmap.from_indices(6, [1, 2, 3])
        assert (a & b).count() == 2
        assert list((a & b).indices()) == [1, 2]

    def test_or_xor_invert_difference(self):
        a = Bitmap.from_indices(4, [0, 1])
        b = Bitmap.from_indices(4, [1, 2])
        assert list((a | b).indices()) == [0, 1, 2]
        assert list((a ^ b).indices()) == [0, 2]
        assert list((~a).indices()) == [2, 3]
        assert list(a.difference(b).indices()) == [0]

    def test_subset(self):
        a = Bitmap.from_indices(5, [1, 2])
        b = Bitmap.from_indices(5, [0, 1, 2, 3])
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(3) & Bitmap(4)

    def test_non_bitmap_operand_rejected(self):
        with pytest.raises(ConfigurationError):
            Bitmap(3) & 7  # type: ignore[operator]


class TestEqualityHash:
    def test_equality_and_hash(self):
        a = Bitmap.from_indices(5, [1, 3])
        b = Bitmap.from_indices(5, [1, 3])
        c = Bitmap.from_indices(6, [1, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a bitmap"

    def test_usable_as_dict_key(self):
        mapping = {Bitmap.from_indices(3, [0]): "x"}
        assert mapping[Bitmap.from_indices(3, [0])] == "x"
