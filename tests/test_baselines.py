"""Tests for the baseline miners (H-DFS, IEMiner, TPMiner).

The central property is *equivalence*: on the same input and configuration all
baselines mine exactly the same frequent temporal patterns (with the same
measures) as E-HTPGM — the paper compares them on runtime and memory, not on
output.  A few structural tests per baseline check their distinctive data
representations.
"""

from __future__ import annotations

import pytest

from repro import HTPGM, MiningConfig, Relation, TemporalPattern
from repro.baselines import BaselineMiner, HDFSMiner, IEMiner, TPMiner
from repro.baselines.tpminer import Endpoint, to_endpoint_sequence
from repro.exceptions import MiningError
from repro.timeseries import EventInstance, SequenceDatabase

K = ("K", "On")
T = ("T", "On")
M = ("M", "On")
C = ("C", "On")

BASELINES = [HDFSMiner, IEMiner, TPMiner]


def config(**kwargs):
    defaults = dict(min_support=0.5, min_confidence=0.5, epsilon=0.0, min_overlap=1.0)
    defaults.update(kwargs)
    return MiningConfig(**defaults)


class TestEquivalenceWithExactMiner:
    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_same_patterns_on_paper_database(self, paper_sequence_db, baseline_cls):
        reference = HTPGM(config()).mine(paper_sequence_db)
        baseline = baseline_cls(config()).mine(paper_sequence_db)
        assert baseline.pattern_set() == reference.pattern_set()
        ref_index = reference.pattern_index()
        for mined in baseline:
            assert ref_index[mined.pattern].support == mined.support
            assert ref_index[mined.pattern].confidence == pytest.approx(mined.confidence)

    @pytest.mark.parametrize("baseline_cls", BASELINES)
    @pytest.mark.parametrize("thresholds", [(0.5, 0.8), (0.75, 0.5)])
    def test_same_patterns_under_other_thresholds(self, paper_sequence_db, baseline_cls, thresholds):
        support, confidence = thresholds
        cfg = config(min_support=support, min_confidence=confidence)
        reference = HTPGM(cfg).mine(paper_sequence_db)
        baseline = baseline_cls(cfg).mine(paper_sequence_db)
        assert baseline.pattern_set() == reference.pattern_set()

    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_same_patterns_on_synthetic_energy_data(self, small_energy, fast_config, baseline_cls):
        _, _, sequence_db = small_energy
        reference = HTPGM(fast_config).mine(sequence_db)
        baseline = baseline_cls(fast_config).mine(sequence_db)
        assert baseline.pattern_set() == reference.pattern_set()

    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_max_pattern_size_respected(self, paper_sequence_db, baseline_cls):
        result = baseline_cls(config(max_pattern_size=2)).mine(paper_sequence_db)
        assert all(m.size <= 2 for m in result)
        assert result.counts_by_size() == {2: 7}

    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_algorithm_name_recorded(self, paper_sequence_db, baseline_cls):
        result = baseline_cls(config(max_pattern_size=2)).mine(paper_sequence_db)
        assert result.algorithm == baseline_cls.algorithm_name

    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_empty_database_raises(self, baseline_cls):
        with pytest.raises(MiningError):
            baseline_cls(config()).mine(SequenceDatabase([]))


class TestBaselineStatistics:
    @pytest.mark.parametrize("baseline_cls", BASELINES)
    def test_work_counters_populated(self, paper_sequence_db, baseline_cls):
        miner = baseline_cls(config())
        miner.mine(paper_sequence_db)
        stats = miner.statistics_
        assert stats is not None
        assert stats.frequent_events == 5
        assert stats.total_candidates > 0
        assert sum(stats.relation_checks.values()) > 0

    def test_baselines_do_more_relation_checks_than_htpgm(self, small_energy, fast_config):
        """The pruning advantage of HTPGM shows up as fewer instance-level checks."""
        _, _, sequence_db = small_energy
        exact = HTPGM(fast_config)
        exact.mine(sequence_db)
        exact_checks = sum(exact.statistics_.relation_checks.values())
        for baseline_cls in (HDFSMiner, IEMiner):
            baseline = baseline_cls(fast_config)
            baseline.mine(sequence_db)
            assert sum(baseline.statistics_.relation_checks.values()) >= exact_checks


class TestHDFSInternals:
    def test_id_lists_vertical_representation(self, paper_sequence_db):
        miner = HDFSMiner(config())
        frequent = {
            event: support
            for event, support in paper_sequence_db.event_support_counts().items()
            if support >= 2
        }
        id_lists = miner._build_id_lists(paper_sequence_db, frequent)
        assert set(id_lists) == set(frequent)
        assert sorted(id_lists[K]) == [0, 1, 2, 3]
        assert all(instances == sorted(instances) for instances in id_lists[K].values())


class TestTPMinerEndpoints:
    def test_endpoint_sequence_ordering(self):
        instances = [
            EventInstance(0, 10, "K", "On"),
            EventInstance(5, 8, "T", "On"),
        ]
        endpoints = to_endpoint_sequence(instances)
        assert len(endpoints) == 4
        times = [e.time for e in endpoints]
        assert times == sorted(times)
        # Starts come before ends at the same time.
        same_time = [e for e in endpoints if e.time == 5]
        assert same_time[0].is_start or len(same_time) == 1

    def test_endpoint_start_flag(self):
        endpoint = Endpoint(time=1.0, kind=0, instance=EventInstance(1, 2, "K", "On"))
        assert endpoint.is_start
        assert not Endpoint(time=2.0, kind=1, instance=EventInstance(1, 2, "K", "On")).is_start


class TestBaselineMinerIsAbstract:
    def test_cannot_instantiate_base(self):
        with pytest.raises(TypeError):
            BaselineMiner(config())  # type: ignore[abstract]
