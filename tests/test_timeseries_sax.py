"""Unit tests for the SAX symboliser (PAA + Gaussian breakpoints)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, SymbolizationError, TimeSeries
from repro.timeseries import SAXSymbolizer, gaussian_breakpoints


class TestGaussianBreakpoints:
    def test_binary_alphabet_breaks_at_zero(self):
        assert gaussian_breakpoints(2) == [pytest.approx(0.0, abs=1e-6)]

    def test_known_values_for_four_symbols(self):
        # Classic SAX table: breakpoints for a = 4 are (-0.674, 0, 0.674).
        breaks = gaussian_breakpoints(4)
        assert breaks[0] == pytest.approx(-0.6745, abs=1e-3)
        assert breaks[1] == pytest.approx(0.0, abs=1e-6)
        assert breaks[2] == pytest.approx(0.6745, abs=1e-3)

    def test_breakpoints_are_increasing(self):
        for size in (2, 3, 5, 8, 12):
            breaks = gaussian_breakpoints(size)
            assert len(breaks) == size - 1
            assert breaks == sorted(breaks)

    def test_too_small_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            gaussian_breakpoints(1)


class TestSAXSymbolizer:
    def _ramp(self, n=120, step=1.0):
        return TimeSeries.from_values("ramp", list(range(n)), step=step)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SAXSymbolizer(frame_duration=0)
        with pytest.raises(ConfigurationError):
            SAXSymbolizer(alphabet_size=1)
        with pytest.raises(ConfigurationError):
            SAXSymbolizer(alphabet_size=3, symbols=("a", "b"))
        with pytest.raises(ConfigurationError):
            SAXSymbolizer(alphabet_size=30)

    def test_requires_fit_before_use(self):
        symbolizer = SAXSymbolizer(frame_duration=10.0)
        with pytest.raises(SymbolizationError):
            symbolizer.symbol_for(1.0)
        with pytest.raises(SymbolizationError):
            symbolizer.transform(self._ramp())

    def test_default_alphabet_names(self):
        assert SAXSymbolizer(alphabet_size=3).alphabet == ("a", "b", "c")

    def test_ramp_maps_low_values_to_early_symbols(self):
        series = self._ramp()
        symbolizer = SAXSymbolizer(frame_duration=10.0, alphabet_size=4).fit(series)
        symbolic = symbolizer.transform(series)
        # Monotonically increasing series: the symbol sequence is non-decreasing
        # in alphabet order and covers both extremes.
        order = {symbol: index for index, symbol in enumerate(symbolizer.alphabet)}
        codes = [order[s] for s in symbolic.symbols]
        assert codes == sorted(codes)
        assert symbolic.symbols[0] == "a"
        assert symbolic.symbols[-1] == "d"

    def test_paa_reduces_resolution(self):
        series = self._ramp(n=100)
        symbolic = SAXSymbolizer(frame_duration=20.0, alphabet_size=3).fit_transform(series)
        assert len(symbolic) == 5
        assert symbolic.sampling_interval == pytest.approx(20.0)

    def test_constant_series_single_symbol(self):
        series = TimeSeries.from_values("flat", [5.0] * 50)
        symbolic = SAXSymbolizer(frame_duration=10.0, alphabet_size=4).fit_transform(series)
        assert len(set(symbolic.symbols)) == 1

    def test_frame_larger_than_series_raises(self):
        # A frame longer than the span still produces one frame; only an empty
        # selection fails, which needs a pathological frame placement.
        series = TimeSeries.from_values("short", [1.0, 2.0], step=1.0)
        symbolic = SAXSymbolizer(frame_duration=100.0, alphabet_size=2).fit_transform(series)
        assert len(symbolic) == 1

    def test_symbols_usable_by_miner(self):
        """SAX output plugs into the standard splitting + mining pipeline."""
        from repro import MiningConfig, HTPGM, SplitConfig, SymbolicDatabase, split_into_sequences

        rng = np.random.default_rng(0)
        n = 240
        base = np.sin(np.arange(n) / 12.0) + rng.normal(0, 0.1, n)
        follower = np.roll(base, 3)
        series_a = TimeSeries("a", np.arange(n, dtype=float) * 5.0, base)
        series_b = TimeSeries("b", np.arange(n, dtype=float) * 5.0, follower)
        symbolizer = SAXSymbolizer(frame_duration=30.0, alphabet_size=3)
        symbolic_db = SymbolicDatabase(
            [symbolizer.fit(series_a).transform(series_a), symbolizer.fit(series_b).transform(series_b)]
        )
        sequence_db = split_into_sequences(symbolic_db, SplitConfig(window_length=300.0))
        result = HTPGM(
            MiningConfig(min_support=0.3, min_confidence=0.3, min_overlap=5.0, max_pattern_size=2)
        ).mine(sequence_db)
        assert len(result) > 0
