"""Unit tests for TemporalPattern (repro.core.patterns)."""

from __future__ import annotations

import pytest

from repro import Relation, TemporalPattern
from repro.core.patterns import PatternMeasures, pair_index, relation_pairs
from repro.exceptions import MiningError

K = ("K", "On")
T = ("T", "On")
M = ("M", "On")
C = ("C", "On")

FOLLOW = Relation.FOLLOW
CONTAIN = Relation.CONTAIN
OVERLAP = Relation.OVERLAP


class TestPairOrdering:
    def test_relation_pairs_grouped_by_later_index(self):
        assert relation_pairs(2) == [(0, 1)]
        assert relation_pairs(3) == [(0, 1), (0, 2), (1, 2)]
        assert relation_pairs(4) == [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]

    def test_pair_index_consistent_with_relation_pairs(self):
        for size in range(2, 6):
            for position, (i, j) in enumerate(relation_pairs(size)):
                assert pair_index(i, j) == position

    def test_pair_index_rejects_bad_pairs(self):
        with pytest.raises(MiningError):
            pair_index(2, 1)
        with pytest.raises(MiningError):
            pair_index(1, 1)


class TestTemporalPattern:
    def test_single_event_pattern(self):
        pattern = TemporalPattern(events=(K,), relations=())
        assert pattern.size == 1
        assert pattern.describe() == "K:On"

    def test_relation_count_validated(self):
        with pytest.raises(MiningError):
            TemporalPattern(events=(K, T), relations=())
        with pytest.raises(MiningError):
            TemporalPattern(events=(K, T, M), relations=(FOLLOW,))

    def test_triples_match_paper_notation(self):
        pattern = TemporalPattern(events=(K, T, M), relations=(CONTAIN, CONTAIN, FOLLOW))
        assert pattern.triples() == [
            (K, CONTAIN, T),
            (K, CONTAIN, M),
            (T, FOLLOW, M),
        ]
        assert pattern.relation_between(1, 2) is FOLLOW

    def test_describe_two_event(self):
        pattern = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        assert pattern.describe() == "K:On < T:On"

    def test_extend_appends_new_relations(self):
        base = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        extended = base.extend(M, (CONTAIN, FOLLOW))
        assert extended.events == (K, T, M)
        assert extended.relations == (CONTAIN, CONTAIN, FOLLOW)
        assert extended.relation_between(0, 2) is CONTAIN
        assert extended.relation_between(1, 2) is FOLLOW

    def test_extend_wrong_relation_count(self):
        base = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        with pytest.raises(MiningError):
            base.extend(M, (CONTAIN,))

    def test_project_keeps_pairwise_relations(self):
        pattern = TemporalPattern(
            events=(K, T, M, C),
            relations=(CONTAIN, CONTAIN, FOLLOW, CONTAIN, FOLLOW, OVERLAP),
        )
        sub = pattern.project((0, 2, 3))
        assert sub.events == (K, M, C)
        assert sub.relation_between(0, 1) is CONTAIN  # K-M
        assert sub.relation_between(0, 2) is CONTAIN  # K-C
        assert sub.relation_between(1, 2) is OVERLAP  # M-C

    def test_project_validation(self):
        pattern = TemporalPattern(events=(K, T, M), relations=(CONTAIN, CONTAIN, FOLLOW))
        with pytest.raises(MiningError):
            pattern.project((2, 0))
        with pytest.raises(MiningError):
            pattern.project((0, 0))
        with pytest.raises(MiningError):
            pattern.project((0, 5))

    def test_sub_patterns_and_containment(self):
        pattern = TemporalPattern(events=(K, T, M), relations=(CONTAIN, CONTAIN, FOLLOW))
        subs = pattern.sub_patterns(2)
        assert len(subs) == 3
        assert TemporalPattern(events=(T, M), relations=(FOLLOW,)) in subs
        assert pattern.contains_pattern(TemporalPattern(events=(K, M), relations=(CONTAIN,)))
        assert not pattern.contains_pattern(TemporalPattern(events=(K, M), relations=(FOLLOW,)))
        # A larger pattern is never contained in a smaller one.
        assert not TemporalPattern(events=(K, T), relations=(CONTAIN,)).contains_pattern(pattern)

    def test_sub_patterns_size_validation(self):
        pattern = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        with pytest.raises(MiningError):
            pattern.sub_patterns(0)
        with pytest.raises(MiningError):
            pattern.sub_patterns(3)

    def test_extend_then_project_roundtrip(self):
        base = TemporalPattern(events=(K, T), relations=(FOLLOW,))
        extended = base.extend(M, (FOLLOW, OVERLAP))
        assert extended.project((0, 1)) == base

    def test_hashable_and_equality(self):
        a = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        b = TemporalPattern(events=(K, T), relations=(CONTAIN,))
        c = TemporalPattern(events=(T, K), relations=(CONTAIN,))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_event_set(self):
        pattern = TemporalPattern(events=(K, K), relations=(FOLLOW,))
        assert pattern.event_set() == {K}


class TestPatternMeasures:
    def test_valid_measures(self):
        measures = PatternMeasures(support=3, relative_support=0.75, confidence=0.9)
        assert measures.support == 3

    def test_invalid_measures(self):
        with pytest.raises(MiningError):
            PatternMeasures(support=-1, relative_support=0.5, confidence=0.5)
        with pytest.raises(MiningError):
            PatternMeasures(support=1, relative_support=1.5, confidence=0.5)
        with pytest.raises(MiningError):
            PatternMeasures(support=1, relative_support=0.5, confidence=1.5)
