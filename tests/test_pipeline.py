"""Tests for the end-to-end FTPMfTS process (repro.pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FTPMfTS,
    MiningConfig,
    SplitConfig,
    ThresholdSymbolizer,
    TimeSeries,
    TimeSeriesSet,
    mine_time_series,
)


@pytest.fixture()
def toy_household() -> TimeSeriesSet:
    """Three days of two correlated appliances plus one independent appliance."""
    rng = np.random.default_rng(11)
    n_days, step = 12, 10.0
    samples_per_day = int(1440 / step)
    n = n_days * samples_per_day
    timestamps = np.arange(n) * step
    kitchen = np.full(n, 0.01)
    toaster = np.full(n, 0.01)
    lonely = np.full(n, 0.01)
    for day in range(n_days):
        base = day * samples_per_day
        start = base + int(6.5 * 60 / step) + rng.integers(-2, 3)
        kitchen[start : start + 6] = 0.4
        toaster[start + 1 : start + 3] = 1.2
        lonely_start = base + rng.integers(0, samples_per_day - 4)
        lonely[lonely_start : lonely_start + 2] = 0.8
    return TimeSeriesSet(
        [
            TimeSeries("Kitchen", timestamps.copy(), kitchen),
            TimeSeries("Toaster", timestamps.copy(), toaster),
            TimeSeries("Lonely", timestamps.copy(), lonely),
        ]
    )


class TestFTPMfTS:
    def test_transform_produces_both_databases(self, toy_household):
        process = FTPMfTS(split_config=SplitConfig(window_length=1440.0))
        symbolic_db, sequence_db = process.transform(toy_household)
        assert symbolic_db.names == ["Kitchen", "Toaster", "Lonely"]
        assert len(sequence_db) == 12
        assert ("Kitchen", "On") in sequence_db.event_keys()

    def test_exact_mining_finds_kitchen_toaster_pattern(self, toy_household):
        process = FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=MiningConfig(
                min_support=0.5, min_confidence=0.5, min_overlap=5.0, max_pattern_size=2
            ),
        )
        result = process.mine(toy_household)
        kitchen_toaster = [
            m
            for m in result
            if {key[0] for key in m.pattern.events} == {"Kitchen", "Toaster"}
            and all(key[1] == "On" for key in m.pattern.events)
        ]
        assert kitchen_toaster, "expected a Kitchen/Toaster On pattern"
        assert kitchen_toaster[0].confidence >= 0.5

    def test_approximate_mode_prunes_uncorrelated_series(self, toy_household):
        process = FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=MiningConfig(
                min_support=0.5, min_confidence=0.5, min_overlap=5.0, max_pattern_size=2
            ),
            approximate=True,
            mi_threshold=0.2,
        )
        result = process.mine(toy_household)
        assert result.algorithm == "A-HTPGM"
        assert "Lonely" not in (result.correlated_series or [])

    def test_mi_options_rejected_without_approximate(self):
        with pytest.raises(ConfigurationError):
            FTPMfTS(split_config=SplitConfig(window_length=100.0), mi_threshold=0.5)

    def test_default_symbolizer_is_threshold(self):
        process = FTPMfTS(split_config=SplitConfig(window_length=100.0))
        assert isinstance(process.symbolizers, ThresholdSymbolizer)

    def test_unaligned_input_is_aligned_automatically(self):
        series_set = TimeSeriesSet(
            [
                TimeSeries("a", np.array([0.0, 10.0, 20.0, 30.0]), np.array([0, 1, 1, 0])),
                TimeSeries("b", np.array([0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]), np.array([0, 0, 1, 1, 1, 0, 0])),
            ]
        )
        process = FTPMfTS(split_config=SplitConfig(window_length=20.0))
        symbolic_db, _ = process.transform(series_set)
        assert symbolic_db.is_aligned()


class TestMineTimeSeriesConvenience:
    def test_one_call_wrapper(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
        )
        assert result.algorithm == "E-HTPGM"
        assert len(result) > 0

    def test_approximate_wrapper(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
            approximate=True,
            graph_density=0.5,
        )
        assert result.algorithm == "A-HTPGM"

    def test_config_kwargs_forwarded(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
            pruning="none",
        )
        assert result.config.pruning.value == "none"


def _restrict_days(series_set: TimeSeriesSet, start_day: int, end_day: int, step=10.0):
    """Slice whole days out of an aligned series set (windows stay aligned)."""
    samples_per_day = int(1440 / step)
    lo, hi = start_day * samples_per_day, end_day * samples_per_day
    return TimeSeriesSet(
        [
            TimeSeries(s.name, s.timestamps[lo:hi].copy(), s.values[lo:hi].copy())
            for s in series_set.series
        ]
    )


class TestIncrementalPipeline:
    CONFIG = MiningConfig(
        min_support=0.5, min_confidence=0.5, min_overlap=5.0, max_pattern_size=2
    )

    def _process(self, **overrides):
        return FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=overrides.pop("mining_config", self.CONFIG),
            **overrides,
        )

    @staticmethod
    def _tuples(result):
        return [
            (m.pattern.events, m.pattern.relations, m.support, m.confidence)
            for m in result
        ]

    def test_mine_incremental_matches_scratch(self, toy_household):
        process = self._process()
        base = _restrict_days(toy_household, 0, 10)
        delta = _restrict_days(toy_household, 10, 12)
        session = process.create_session()
        process.mine(base, session=session)
        incremental = process.mine_incremental(delta, session)
        scratch = process.mine(toy_household)
        assert self._tuples(incremental) == self._tuples(scratch)
        assert session.n_sequences == 12

    def test_mine_time_series_session_parameter(self, toy_household):
        from repro import MiningSession

        base = _restrict_days(toy_household, 0, 10)
        session = MiningSession(self.CONFIG)
        result = mine_time_series(
            base,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
            session=session,
        )
        assert session.mined
        assert session.n_sequences == 10
        assert self._tuples(result) == self._tuples(
            self._process().mine(base)
        )

    def test_mined_session_rejected_for_full_mine(self, toy_household):
        from repro import MiningError

        process = self._process()
        session = process.create_session()
        process.mine(toy_household, session=session)
        with pytest.raises(MiningError):
            process.mine(toy_household, session=session)

    def test_session_config_mismatch_rejected(self, toy_household):
        from repro import MiningSession

        process = self._process()
        foreign = MiningSession(MiningConfig(min_support=0.9))
        with pytest.raises(ConfigurationError):
            process.mine(toy_household, session=foreign)

    def test_engine_difference_is_not_a_mismatch(self, toy_household):
        """A serially mined session can be appended with the process engine."""
        from repro import MiningSession

        base = _restrict_days(toy_household, 0, 10)
        delta = _restrict_days(toy_household, 10, 12)
        session = MiningSession(self.CONFIG)
        serial_process = self._process()
        serial_process.mine(base, session=session)
        parallel_process = self._process(
            mining_config=self.CONFIG.with_engine("process", 2)
        )
        incremental = parallel_process.mine_incremental(delta, session)
        scratch = serial_process.mine(toy_household)
        assert self._tuples(incremental) == self._tuples(scratch)

    def test_approximate_pipeline_rejects_sessions(self, toy_household):
        process = FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=self.CONFIG,
            approximate=True,
            mi_threshold=0.2,
        )
        with pytest.raises(ConfigurationError):
            process.create_session()
        from repro import MiningSession

        with pytest.raises(ConfigurationError):
            process.mine(toy_household, session=MiningSession(self.CONFIG))
