"""Tests for the end-to-end FTPMfTS process (repro.pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    FTPMfTS,
    MiningConfig,
    SplitConfig,
    ThresholdSymbolizer,
    TimeSeries,
    TimeSeriesSet,
    mine_time_series,
)


@pytest.fixture()
def toy_household() -> TimeSeriesSet:
    """Three days of two correlated appliances plus one independent appliance."""
    rng = np.random.default_rng(11)
    n_days, step = 12, 10.0
    samples_per_day = int(1440 / step)
    n = n_days * samples_per_day
    timestamps = np.arange(n) * step
    kitchen = np.full(n, 0.01)
    toaster = np.full(n, 0.01)
    lonely = np.full(n, 0.01)
    for day in range(n_days):
        base = day * samples_per_day
        start = base + int(6.5 * 60 / step) + rng.integers(-2, 3)
        kitchen[start : start + 6] = 0.4
        toaster[start + 1 : start + 3] = 1.2
        lonely_start = base + rng.integers(0, samples_per_day - 4)
        lonely[lonely_start : lonely_start + 2] = 0.8
    return TimeSeriesSet(
        [
            TimeSeries("Kitchen", timestamps.copy(), kitchen),
            TimeSeries("Toaster", timestamps.copy(), toaster),
            TimeSeries("Lonely", timestamps.copy(), lonely),
        ]
    )


class TestFTPMfTS:
    def test_transform_produces_both_databases(self, toy_household):
        process = FTPMfTS(split_config=SplitConfig(window_length=1440.0))
        symbolic_db, sequence_db = process.transform(toy_household)
        assert symbolic_db.names == ["Kitchen", "Toaster", "Lonely"]
        assert len(sequence_db) == 12
        assert ("Kitchen", "On") in sequence_db.event_keys()

    def test_exact_mining_finds_kitchen_toaster_pattern(self, toy_household):
        process = FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=MiningConfig(
                min_support=0.5, min_confidence=0.5, min_overlap=5.0, max_pattern_size=2
            ),
        )
        result = process.mine(toy_household)
        kitchen_toaster = [
            m
            for m in result
            if {key[0] for key in m.pattern.events} == {"Kitchen", "Toaster"}
            and all(key[1] == "On" for key in m.pattern.events)
        ]
        assert kitchen_toaster, "expected a Kitchen/Toaster On pattern"
        assert kitchen_toaster[0].confidence >= 0.5

    def test_approximate_mode_prunes_uncorrelated_series(self, toy_household):
        process = FTPMfTS(
            split_config=SplitConfig(window_length=1440.0),
            mining_config=MiningConfig(
                min_support=0.5, min_confidence=0.5, min_overlap=5.0, max_pattern_size=2
            ),
            approximate=True,
            mi_threshold=0.2,
        )
        result = process.mine(toy_household)
        assert result.algorithm == "A-HTPGM"
        assert "Lonely" not in (result.correlated_series or [])

    def test_mi_options_rejected_without_approximate(self):
        with pytest.raises(ConfigurationError):
            FTPMfTS(split_config=SplitConfig(window_length=100.0), mi_threshold=0.5)

    def test_default_symbolizer_is_threshold(self):
        process = FTPMfTS(split_config=SplitConfig(window_length=100.0))
        assert isinstance(process.symbolizers, ThresholdSymbolizer)

    def test_unaligned_input_is_aligned_automatically(self):
        series_set = TimeSeriesSet(
            [
                TimeSeries("a", np.array([0.0, 10.0, 20.0, 30.0]), np.array([0, 1, 1, 0])),
                TimeSeries("b", np.array([0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0]), np.array([0, 0, 1, 1, 1, 0, 0])),
            ]
        )
        process = FTPMfTS(split_config=SplitConfig(window_length=20.0))
        symbolic_db, _ = process.transform(series_set)
        assert symbolic_db.is_aligned()


class TestMineTimeSeriesConvenience:
    def test_one_call_wrapper(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
        )
        assert result.algorithm == "E-HTPGM"
        assert len(result) > 0

    def test_approximate_wrapper(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
            approximate=True,
            graph_density=0.5,
        )
        assert result.algorithm == "A-HTPGM"

    def test_config_kwargs_forwarded(self, toy_household):
        result = mine_time_series(
            toy_household,
            window_length=1440.0,
            min_support=0.5,
            min_confidence=0.5,
            min_overlap=5.0,
            max_pattern_size=2,
            pruning="none",
        )
        assert result.config.pruning.value == "none"
