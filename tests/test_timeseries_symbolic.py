"""Unit tests for repro.timeseries.symbolic (DSYB, intervals, distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataError, SymbolicDatabase, SymbolicSeries


def make_series(name: str, symbols: list[str], alphabet=("Off", "On"), step=1.0):
    timestamps = np.arange(len(symbols), dtype=float) * step
    return SymbolicSeries(name=name, timestamps=timestamps, symbols=symbols, alphabet=alphabet)


class TestSymbolicSeries:
    def test_validation_rejects_unknown_symbols(self):
        with pytest.raises(DataError):
            make_series("x", ["On", "Maybe"])

    def test_validation_rejects_length_mismatch(self):
        with pytest.raises(DataError):
            SymbolicSeries("x", np.array([0.0, 1.0]), ["On"], ("Off", "On"))

    def test_validation_rejects_empty(self):
        with pytest.raises(DataError):
            SymbolicSeries("x", np.array([]), [], ("Off", "On"))

    def test_distribution_covers_full_alphabet(self):
        series = make_series("x", ["On", "On", "Off", "On"])
        dist = series.distribution()
        assert dist == {"Off": 0.25, "On": 0.75}

    def test_distribution_zero_probability_symbol(self):
        series = make_series("x", ["On", "On"], alphabet=("Off", "On", "Standby"))
        dist = series.distribution()
        assert dist["Standby"] == 0.0
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_codes_match_alphabet_positions(self):
        series = make_series("x", ["On", "Off", "On"])
        assert series.codes().tolist() == [1, 0, 1]

    def test_to_intervals_merges_runs(self):
        # Paper Def. 3.4: consecutive identical symbols combine into one interval.
        series = make_series("K", ["On", "On", "Off", "Off", "On"], step=5.0)
        intervals = series.to_intervals()
        assert [(i.symbol, i.start, i.end) for i in intervals] == [
            ("On", 0.0, 10.0),
            ("Off", 10.0, 20.0),
            ("On", 20.0, 25.0),
        ]

    def test_to_intervals_single_run_gets_full_span(self):
        series = make_series("K", ["On", "On", "On"], step=2.0)
        intervals = series.to_intervals()
        assert len(intervals) == 1
        assert intervals[0].duration == pytest.approx(6.0)

    def test_interval_durations_sum_to_span(self):
        series = make_series("K", ["On", "Off", "Off", "On", "On", "Off"], step=1.0)
        intervals = series.to_intervals()
        assert sum(i.duration for i in intervals) == pytest.approx(6.0)

    def test_slice_time(self):
        series = make_series("x", ["On", "Off", "On", "Off"], step=1.0)
        window = series.slice_time(1.0, 3.0)
        assert window.symbols == ["Off", "On"]

    def test_slice_time_empty_raises(self):
        series = make_series("x", ["On"])
        with pytest.raises(DataError):
            series.slice_time(5.0, 6.0)


class TestSymbolicDatabase:
    def test_duplicate_names_rejected(self):
        with pytest.raises(DataError):
            SymbolicDatabase([make_series("a", ["On"]), make_series("a", ["Off"])])

    def test_getitem_and_select(self):
        db = SymbolicDatabase([make_series("a", ["On", "Off"]), make_series("b", ["Off", "On"])])
        assert db["a"].symbols == ["On", "Off"]
        assert db.select(["b"]).names == ["b"]
        with pytest.raises(DataError):
            db["missing"]

    def test_alignment_check_and_cache(self):
        db = SymbolicDatabase([make_series("a", ["On", "Off"]), make_series("b", ["Off", "On"])])
        assert db.is_aligned()
        assert db.is_aligned()  # second call exercises the cached path
        misaligned = SymbolicDatabase(
            [make_series("a", ["On", "Off"]), make_series("b", ["Off", "On", "On"])]
        )
        assert not misaligned.is_aligned()
        with pytest.raises(DataError):
            misaligned.require_aligned()

    def test_joint_distribution_paper_style(self):
        # Two perfectly synchronised series: p(On, On) = p(Off, Off) = 0.5.
        db = SymbolicDatabase(
            [
                make_series("x", ["On", "Off", "On", "Off"]),
                make_series("y", ["On", "Off", "On", "Off"]),
            ]
        )
        joint = db.joint_distribution("x", "y")
        assert joint[("On", "On")] == pytest.approx(0.5)
        assert joint[("Off", "Off")] == pytest.approx(0.5)
        assert joint[("On", "Off")] == 0.0
        assert sum(joint.values()) == pytest.approx(1.0)

    def test_joint_distribution_independent_series(self):
        db = SymbolicDatabase(
            [
                make_series("x", ["On", "On", "Off", "Off"]),
                make_series("y", ["On", "Off", "On", "Off"]),
            ]
        )
        joint = db.joint_distribution("x", "y")
        assert all(p == pytest.approx(0.25) for p in joint.values())

    def test_time_span(self):
        db = SymbolicDatabase([make_series("a", ["On", "Off"], step=5.0)])
        assert db.time_span == (0.0, 10.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(DataError):
            SymbolicDatabase([]).time_span
