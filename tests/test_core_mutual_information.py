"""Unit tests for entropy / MI / NMI and the Theorem 1 lower bound."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import ConfigurationError, SymbolicDatabase, SymbolicSeries, confidence_lower_bound, normalized_mutual_information
from repro.core.mutual_information import (
    conditional_entropy,
    entropy,
    mutual_information,
    nmi_matrix,
)
from repro.exceptions import DataError


def make_series(name, symbols, alphabet=("Off", "On")):
    return SymbolicSeries(
        name=name,
        timestamps=np.arange(len(symbols), dtype=float),
        symbols=symbols,
        alphabet=alphabet,
    )


class TestEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert entropy({"On": 0.5, "Off": 0.5}) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy({"On": 1.0, "Off": 0.0}) == pytest.approx(0.0)

    def test_uniform_four_symbols_is_two_bits(self):
        assert entropy({s: 0.25 for s in "abcd"}) == pytest.approx(2.0)

    def test_requires_normalised_distribution(self):
        with pytest.raises(DataError):
            entropy({"a": 0.5, "b": 0.2})
        with pytest.raises(DataError):
            entropy({"a": 0.0})


class TestMutualInformation:
    def test_identical_series_mi_equals_entropy(self):
        px = {"On": 0.5, "Off": 0.5}
        joint = {("On", "On"): 0.5, ("Off", "Off"): 0.5, ("On", "Off"): 0.0, ("Off", "On"): 0.0}
        assert mutual_information(joint, px, px) == pytest.approx(entropy(px))

    def test_independent_series_mi_zero(self):
        px = {"On": 0.5, "Off": 0.5}
        joint = {(a, b): 0.25 for a in ("On", "Off") for b in ("On", "Off")}
        assert mutual_information(joint, px, px) == pytest.approx(0.0)

    def test_conditional_entropy_chain_rule(self):
        """H(X|Y) = H(X) - I(X;Y) for a dependent pair."""
        px = {"On": 0.5, "Off": 0.5}
        py = {"On": 0.5, "Off": 0.5}
        joint = {("On", "On"): 0.4, ("Off", "Off"): 0.4, ("On", "Off"): 0.1, ("Off", "On"): 0.1}
        mi = mutual_information(joint, px, py)
        assert conditional_entropy(joint, py) == pytest.approx(entropy(px) - mi)

    def test_zero_marginal_with_positive_joint_raises(self):
        with pytest.raises(DataError):
            mutual_information({("a", "b"): 0.5}, {"a": 0.0}, {"b": 0.5})


class TestNormalizedMutualInformation:
    def test_identical_series_nmi_is_one(self):
        db = SymbolicDatabase(
            [make_series("x", ["On", "Off", "On", "Off"]), make_series("y", ["On", "Off", "On", "Off"])]
        )
        assert normalized_mutual_information(db, "x", "y") == pytest.approx(1.0)

    def test_independent_series_nmi_is_zero(self):
        db = SymbolicDatabase(
            [make_series("x", ["On", "On", "Off", "Off"]), make_series("y", ["On", "Off", "On", "Off"])]
        )
        assert normalized_mutual_information(db, "x", "y") == pytest.approx(0.0)

    def test_nmi_is_asymmetric(self):
        # y refines x: knowing y determines x, but not vice versa.
        x = make_series("x", ["On", "On", "Off", "Off"])
        y = make_series("y", ["a", "b", "c", "c"], alphabet=("a", "b", "c"))
        db = SymbolicDatabase([x, y])
        forward = normalized_mutual_information(db, "x", "y")
        backward = normalized_mutual_information(db, "y", "x")
        assert forward == pytest.approx(1.0)
        assert backward < forward

    def test_constant_series_has_zero_nmi(self):
        db = SymbolicDatabase(
            [make_series("x", ["On", "On", "On"]), make_series("y", ["On", "Off", "On"])]
        )
        assert normalized_mutual_information(db, "x", "y") == 0.0

    def test_nmi_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        symbols_x = ["On" if v else "Off" for v in rng.integers(0, 2, 50)]
        symbols_y = ["On" if v else "Off" for v in rng.integers(0, 2, 50)]
        db = SymbolicDatabase([make_series("x", symbols_x), make_series("y", symbols_y)])
        value = normalized_mutual_information(db, "x", "y")
        assert 0.0 <= value <= 1.0

    def test_nmi_matrix_covers_all_ordered_pairs(self):
        db = SymbolicDatabase(
            [
                make_series("a", ["On", "Off", "On", "Off"]),
                make_series("b", ["On", "On", "Off", "Off"]),
                make_series("c", ["Off", "Off", "On", "On"]),
            ]
        )
        matrix = nmi_matrix(db)
        assert len(matrix) == 6
        assert ("a", "a") not in matrix
        # b and c are complements of each other: perfectly informative.
        assert matrix[("b", "c")] == pytest.approx(1.0)

    def test_nmi_matrix_parallel_backend_bit_identical(self):
        """Sharding the ordered pairs across workers changes nothing."""
        from repro import ProcessPoolBackend

        rng = np.random.default_rng(3)
        db = SymbolicDatabase(
            [
                make_series(
                    f"s{index}",
                    ["On" if v else "Off" for v in rng.integers(0, 2, 32)],
                )
                for index in range(6)
            ]
        )
        serial_matrix = nmi_matrix(db)
        with ProcessPoolBackend(n_workers=2, min_candidates_per_worker=1) as backend:
            parallel_matrix = nmi_matrix(db, backend=backend)
        assert serial_matrix == parallel_matrix


class TestConfidenceLowerBound:
    def test_bound_is_between_zero_and_one(self):
        for mu in (0.2, 0.5, 0.9):
            bound = confidence_lower_bound(0.3, 0.6, n_symbols=2, mi_threshold=mu)
            assert 0.0 <= bound <= 1.0

    def test_bound_increases_with_mi_threshold(self):
        """Theorem 1: a stronger correlation requirement gives a stronger guarantee."""
        bounds = [
            confidence_lower_bound(0.3, 0.5, n_symbols=2, mi_threshold=mu)
            for mu in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert bounds == sorted(bounds)

    def test_bound_at_mu_one(self):
        # mu = 1: exponent (1 - mu)/sigma = 0, so LB = sigma / (2 sigma_m - sigma).
        bound = confidence_lower_bound(0.4, 0.6, n_symbols=2, mi_threshold=1.0)
        assert bound == pytest.approx(0.4 / (2 * 0.6 - 0.4))

    def test_degenerate_saturation_returns_zero(self):
        assert confidence_lower_bound(0.5, 1.0, n_symbols=2, mi_threshold=0.5) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            confidence_lower_bound(0.0, 0.5, 2, 0.5)
        with pytest.raises(ConfigurationError):
            confidence_lower_bound(0.6, 0.5, 2, 0.5)  # sigma_m < sigma
        with pytest.raises(ConfigurationError):
            confidence_lower_bound(0.3, 0.5, 1, 0.5)
        with pytest.raises(ConfigurationError):
            confidence_lower_bound(0.3, 0.5, 2, 0.0)
