"""Empirical validation of the paper's lemmas and Theorem 1.

The unit tests elsewhere pin down individual components; the tests in this
module check the *paper's analytical claims* against the behaviour of the
implementation on concrete data:

* Lemma 1 — the search-space bound O(m^h 3^(h^2)) dominates the number of
  patterns actually stored in the Hierarchical Pattern Graph;
* Lemmas 2/3 — support and confidence of a pattern never exceed the support
  and confidence of its event combination;
* Lemma 4 — transitivity: a chronologically later instance always forms some
  relation with every earlier instance (given a permissive overlap);
* Lemma 8 — support of an event pair in DSYB never exceeds its support in DSEQ;
* Theorem 1 — the confidence lower bound holds for frequent event pairs of
  correlated series.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    HTPGM,
    MiningConfig,
    SplitConfig,
    ThresholdSymbolizer,
    TimeSeries,
    TimeSeriesSet,
    confidence_lower_bound,
    normalized_mutual_information,
    split_into_sequences,
    symbolize_set,
)
from repro.core.relations import classify
from repro.timeseries import EventInstance


class TestLemma1SearchSpaceBound:
    def test_stored_patterns_below_analytical_bound(self, paper_sequence_db):
        miner = HTPGM(MiningConfig(min_support=0.5, min_confidence=0.5, min_overlap=1.0))
        result = miner.mine(paper_sequence_db)
        graph = miner.graph_
        m = len(graph.frequent_events())
        h = graph.max_level()
        bound = (m**h) * (3 ** (h * h))
        assert len(result) < bound
        assert result.statistics.total_candidates < bound


class TestLemmas2and3:
    def test_pattern_measures_bounded_by_event_combination(self, paper_sequence_db):
        miner = HTPGM(MiningConfig(min_support=0.5, min_confidence=0.5, min_overlap=1.0))
        result = miner.mine(paper_sequence_db)
        graph = miner.graph_
        for mined in result:
            node = graph.node_for(tuple(sorted(mined.pattern.events)))
            assert node is not None
            # Lemma 2: supp(P) <= supp(event combination).
            assert mined.support <= node.support
            # Lemma 3: conf(P) <= conf(event combination).
            max_event_support = max(
                graph.event_support(event) for event in mined.pattern.events
            )
            combination_confidence = node.support / max_event_support
            assert mined.confidence <= combination_confidence + 1e-12


class TestLemma4Transitivity:
    def test_later_instance_always_relates_to_earlier_ones(self):
        """With d_o no larger than the shortest overlap, a chronologically later
        instance forms Follow, Contain or Overlap with every earlier instance."""
        rng = np.random.default_rng(3)
        for _ in range(200):
            s1 = rng.uniform(0, 50)
            e1 = s1 + rng.uniform(1, 30)
            s2 = s1 + rng.uniform(0, 40)
            e2 = s2 + rng.uniform(1, 30)
            first = EventInstance(s1, e1, "A", "On")
            second = EventInstance(s2, e2, "B", "On")
            overlap = e1 - s2
            if 0 < overlap < 1e-6:
                continue  # degenerate touching intervals
            min_overlap = min(max(overlap, 1e-9), 1e-9) if overlap <= 0 else min(overlap, 1.0)
            relation = classify(first, second, epsilon=0.0, min_overlap=max(min_overlap, 1e-9))
            assert relation is not None, (first, second)


def _two_series_world(seed: int = 0, n_days: int = 40):
    """Two strongly coupled On/Off series used by the Lemma 8 / Theorem 1 tests."""
    rng = np.random.default_rng(seed)
    step = 10.0
    samples_per_day = int(1440 / step)
    n = n_days * samples_per_day
    timestamps = np.arange(n) * step
    x = np.full(n, 0.0)
    y = np.full(n, 0.0)
    for day in range(n_days):
        base = day * samples_per_day
        start = base + int(rng.normal(60, 3))
        x[start : start + 12] = 1.0
        if rng.random() < 0.9:
            y[start + 2 : start + 10] = 1.0
    return TimeSeriesSet(
        [TimeSeries("X", timestamps.copy(), x), TimeSeries("Y", timestamps.copy(), y)]
    )


class TestLemma8AndTheorem1:
    @pytest.fixture(scope="class")
    def world(self):
        series_set = _two_series_world()
        symbolic_db = symbolize_set(series_set, ThresholdSymbolizer(threshold=0.5))
        sequence_db = split_into_sequences(symbolic_db, SplitConfig(window_length=1440.0))
        return symbolic_db, sequence_db

    @staticmethod
    def _dsyb_pair_support(symbolic_db, symbol_x="On", symbol_y="On") -> float:
        xs = symbolic_db["X"].symbols
        ys = symbolic_db["Y"].symbols
        joint = sum(1 for a, b in zip(xs, ys) if a == symbol_x and b == symbol_y)
        return joint / len(xs)

    def test_lemma8_dsyb_support_below_dseq_support(self, world):
        symbolic_db, sequence_db = world
        dsyb_support = self._dsyb_pair_support(symbolic_db)
        x_on, y_on = ("X", "On"), ("Y", "On")
        dseq_support = sum(
            1
            for sequence in sequence_db
            if sequence.contains_event(x_on) and sequence.contains_event(y_on)
        ) / len(sequence_db)
        assert dsyb_support <= dseq_support + 1e-12

    def test_theorem1_confidence_lower_bound_holds(self, world):
        symbolic_db, sequence_db = world
        x_on, y_on = ("X", "On"), ("Y", "On")

        # Per-symbol supports in DSYB.
        xs = symbolic_db["X"].symbols
        ys = symbolic_db["Y"].symbols
        supp_x = sum(1 for s in xs if s == "On") / len(xs)
        supp_y = sum(1 for s in ys if s == "On") / len(ys)
        pair_support = self._dsyb_pair_support(symbolic_db)
        sigma = pair_support * 0.99            # the pair is frequent at this sigma
        sigma_m = max(supp_x, supp_y)

        mu = min(
            normalized_mutual_information(symbolic_db, "X", "Y"),
            normalized_mutual_information(symbolic_db, "Y", "X"),
        )
        assert mu > 0, "the two series are constructed to be correlated"

        bound = confidence_lower_bound(
            min_support=sigma, max_support=sigma_m, n_symbols=2, mi_threshold=mu
        )

        # Measured confidence of the event pair in DSEQ (Def. 3.15).
        counts = sequence_db.event_support_counts()
        joint = sum(
            1
            for sequence in sequence_db
            if sequence.contains_event(x_on) and sequence.contains_event(y_on)
        )
        confidence = joint / max(counts[x_on], counts[y_on])
        assert confidence >= bound - 1e-9

    def test_theorem1_bound_is_nontrivial_for_strong_correlation(self):
        """For near-perfectly correlated series the bound should be clearly
        positive (otherwise the theorem would never prune anything useful)."""
        bound = confidence_lower_bound(
            min_support=0.4, max_support=0.5, n_symbols=2, mi_threshold=0.9
        )
        assert bound > 0.3
